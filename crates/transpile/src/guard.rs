//! Pass isolation, resource budgets and graceful degradation.
//!
//! The failure model of the transpile stack: a pass that panics, returns
//! an error, or corrupts the DAG must never take the whole compilation
//! down with it. [`PassGuard`] runs every [`DagPass`] against a pre-pass
//! checkpoint under [`std::panic::catch_unwind`]; a failing pass is rolled
//! back and **quarantined** (skipped for the rest of the run), and the
//! pipeline continues with the remaining passes. The caller always gets
//! either a typed [`RpoError`] or a valid, semantics-preserving circuit —
//! plus a [`DegradationReport`] saying exactly what was contained.
//!
//! [`TranspileBudget`] adds cooperative resource ceilings. The *graceful*
//! dimensions — wall-clock deadline and fixed-point iterations — skip
//! optional optimization passes and return the best circuit so far
//! (mandatory stages: unrolling, layout, routing always run). The *hard*
//! dimensions — gate and qubit counts — abort with
//! [`RpoError::BudgetExceeded`], because exceeding them means the output
//! would be unusable anyway.
//!
//! After each guarded pass a validator checks the DAG: structural
//! invariants ([`Dag::check_invariants`]), gate-level validity (finite
//! parameters, embedded matrices actually unitary), and — on circuits
//! small enough to afford it — a unitary spot check against the
//! checkpoint. Validation runs on every pass in debug builds and on a
//! deterministic sample in release builds ([`ValidationMode`]), keeping
//! the guards off the hot path.

use crate::manager::{run_timed, DagPass, PassStats, PropertySet};
use qc_circuit::{BudgetKind, ChangeReport, Dag, Gate, RpoError, UnitaryAccumulator};
use qc_math::Matrix;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Cooperative resource ceilings for one transpile run. `None` everywhere
/// (the default) means unlimited — zero overhead beyond the per-pass
/// checkpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TranspileBudget {
    /// Wall-clock ceiling. Graceful: on expiry the pipeline skips optional
    /// optimization passes and returns the best circuit so far.
    pub deadline: Option<Duration>,
    /// Ceiling on fixed-point loop iterations (graceful, like `deadline`).
    pub max_fixpoint_iters: Option<usize>,
    /// Hard ceiling on the gate count at any pass boundary.
    pub max_gates: Option<usize>,
    /// Hard ceiling on the circuit's qubit count, checked at entry.
    pub max_qubits: Option<usize>,
}

impl TranspileBudget {
    /// No limits (the default).
    pub fn unlimited() -> Self {
        TranspileBudget::default()
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the fixed-point iteration ceiling.
    pub fn with_max_fixpoint_iters(mut self, n: usize) -> Self {
        self.max_fixpoint_iters = Some(n);
        self
    }

    /// Sets the hard gate-count ceiling.
    pub fn with_max_gates(mut self, n: usize) -> Self {
        self.max_gates = Some(n);
        self
    }

    /// Sets the hard qubit-count ceiling.
    pub fn with_max_qubits(mut self, n: usize) -> Self {
        self.max_qubits = Some(n);
        self
    }
}

/// The universe of *disableable* pass labels: every optional optimization
/// stage the guarded pipelines run. Mandatory stages (device unrolling,
/// layout, routing) are deliberately absent — disabling them could not be
/// honored anyway, since without them there is no hardware-valid output.
///
/// The order is the bit order of [`PassSet`]; appending is
/// backwards-compatible, reordering is not (serve-level breaker state is
/// keyed by label, not bit, so only in-process `PassSet` values care).
pub const DISABLEABLE_PASSES: [&str; 7] = [
    "QBO(early)",
    "QBO(post-route)",
    "QPO",
    "Optimize1qGates",
    "CommutativeCancellation",
    "CxCancellation",
    "ConsolidateBlocks",
];

/// A set of disableable pass labels, packed into a bitmask so it stays
/// `Copy` (it travels on [`crate::TranspileOptions`]). Used by the serve
/// layer's retry path ("recompile with the offending pass pre-disabled")
/// and circuit breakers ("remove this pass from admission fleet-wide").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct PassSet {
    bits: u8,
}

impl PassSet {
    /// The empty set (nothing disabled) — the default.
    pub fn empty() -> Self {
        PassSet::default()
    }

    /// Whether no pass is in the set.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// The bit index of `label`, if it names a disableable pass.
    fn bit(label: &str) -> Option<u8> {
        DISABLEABLE_PASSES
            .iter()
            .position(|&l| l == label)
            .map(|i| i as u8)
    }

    /// Whether `label` names a pass that *can* be disabled at all.
    pub fn is_disableable(label: &str) -> bool {
        Self::bit(label).is_some()
    }

    /// Adds `label` to the set. Returns `false` (set unchanged) when the
    /// label is not disableable.
    pub fn insert(&mut self, label: &str) -> bool {
        match Self::bit(label) {
            Some(b) => {
                self.bits |= 1 << b;
                true
            }
            None => false,
        }
    }

    /// Whether `label` is in the set.
    pub fn contains(&self, label: &str) -> bool {
        Self::bit(label).is_some_and(|b| self.bits & (1 << b) != 0)
    }

    /// The union of two sets.
    pub fn union(self, other: PassSet) -> PassSet {
        PassSet {
            bits: self.bits | other.bits,
        }
    }

    /// The labels in the set, in [`DISABLEABLE_PASSES`] order.
    pub fn iter(&self) -> impl Iterator<Item = &'static str> + '_ {
        DISABLEABLE_PASSES
            .iter()
            .enumerate()
            .filter(|(i, _)| self.bits & (1 << i) != 0)
            .map(|(_, &l)| l)
    }
}

/// A pass the guard rolled back and disabled for the rest of the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// The pass (stage label) that failed.
    pub pass: String,
    /// Why: the panic payload, inner error, or validation failure.
    pub reason: String,
}

/// A budget ceiling the run hit (gracefully).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetHit {
    /// Which ceiling.
    pub kind: BudgetKind,
    /// Where in the pipeline it was noticed.
    pub context: String,
}

/// What the guard contained during a run: the caller's proof that the
/// output, while valid, may be less optimized than usual.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DegradationReport {
    /// Passes rolled back and disabled, in the order they failed.
    pub quarantined: Vec<QuarantineRecord>,
    /// Budget ceilings hit (graceful degradations), in order.
    pub budget_hits: Vec<BudgetHit>,
    /// Optional passes the *caller* disabled up front
    /// ([`crate::TranspileOptions::disabled_passes`] — serve-level retry
    /// and circuit breakers). Requested behavior, so it does not make the
    /// run unclean, but responses surface it for observability.
    pub predisabled: Vec<String>,
}

impl DegradationReport {
    /// Whether the run completed with no *unexpected* containment:
    /// nothing quarantined, no budget ceiling hit. Caller-requested
    /// pre-disables do not count — the run did exactly what was asked.
    pub fn is_clean(&self) -> bool {
        self.quarantined.is_empty() && self.budget_hits.is_empty()
    }

    /// Whether `pass` was quarantined.
    pub fn is_quarantined(&self, pass: &str) -> bool {
        self.quarantined.iter().any(|q| q.pass == pass)
    }
}

/// How often the post-pass validator runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValidationMode {
    /// After every guarded pass (the debug-build default).
    Always,
    /// Deterministically every `n`-th guarded pass execution, plus the
    /// first (the release-build default, `n = 16`).
    Sampled(usize),
    /// Never (benchmarks only; quarantine of panics/errors still works).
    Off,
}

impl ValidationMode {
    fn default_for_build() -> Self {
        if cfg!(debug_assertions) {
            ValidationMode::Always
        } else {
            ValidationMode::Sampled(16)
        }
    }
}

/// A `Copy` view of the running budget that budget-aware passes
/// (`ConsolidateBlocks`, routing) read from the [`PropertySet`] to bail
/// out of expensive inner loops when the deadline passes.
#[derive(Clone, Copy, Debug)]
pub struct BudgetSnapshot {
    deadline_at: Option<Instant>,
}

impl BudgetSnapshot {
    /// A snapshot with no deadline (inner loops never bail).
    pub fn unlimited() -> Self {
        BudgetSnapshot { deadline_at: None }
    }

    /// Whether the deadline has passed.
    pub fn exceeded(&self) -> bool {
        self.deadline_at.is_some_and(|t| Instant::now() >= t)
    }
}

/// [`PropertySet`] key of the [`BudgetSnapshot`].
pub const BUDGET_KEY: &str = "transpile_budget";

/// The outcome of one guarded pass execution.
#[derive(Debug)]
pub enum GuardedRun {
    /// The pass ran (and validated, when sampled); here is its report.
    Ran(ChangeReport),
    /// The pass did not run (quarantined or deadline) or was rolled back —
    /// either way the DAG is unchanged.
    Skipped,
}

/// Runs passes under panic containment, checkpoint/rollback, budgets and
/// post-pass validation. One guard instance spans one pipeline run; its
/// [`DegradationReport`] travels out on the transpiled result.
pub struct PassGuard {
    budget: TranspileBudget,
    deadline_at: Option<Instant>,
    quarantined: HashSet<String>,
    predisabled: PassSet,
    report: DegradationReport,
    deadline_reported: bool,
    validation: ValidationMode,
    executions: usize,
}

impl PassGuard {
    /// A guard for one pipeline run under `budget`, with the build's
    /// default [`ValidationMode`].
    pub fn new(budget: TranspileBudget) -> Self {
        PassGuard {
            budget,
            deadline_at: budget.deadline.map(|d| Instant::now() + d),
            quarantined: HashSet::new(),
            predisabled: PassSet::empty(),
            report: DegradationReport::default(),
            deadline_reported: false,
            validation: ValidationMode::default_for_build(),
            executions: 0,
        }
    }

    /// Overrides the validation mode.
    pub fn with_validation(mut self, mode: ValidationMode) -> Self {
        self.validation = mode;
        self
    }

    /// Pre-disables a set of optional passes for the whole run (the serve
    /// layer's retry/circuit-breaker hook). Disabled passes are skipped
    /// *only in their optional executions*; mandatory stages carrying the
    /// same label still run, so the output stays hardware-valid. The set
    /// is recorded on [`DegradationReport::predisabled`].
    pub fn with_predisabled(mut self, set: PassSet) -> Self {
        self.predisabled = set;
        self.report.predisabled = set.iter().map(str::to_string).collect();
        self
    }

    /// The budget this guard enforces.
    pub fn budget(&self) -> &TranspileBudget {
        &self.budget
    }

    /// Whether the wall-clock deadline has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.deadline_at.is_some_and(|t| Instant::now() >= t)
    }

    /// The [`BudgetSnapshot`] budget-aware passes read mid-loop.
    pub fn snapshot(&self) -> BudgetSnapshot {
        BudgetSnapshot {
            deadline_at: self.deadline_at,
        }
    }

    /// Entry check: the hard qubit ceiling.
    ///
    /// # Errors
    ///
    /// [`RpoError::BudgetExceeded`] when the circuit is wider than
    /// [`TranspileBudget::max_qubits`].
    pub fn check_qubits(&self, num_qubits: usize) -> Result<(), RpoError> {
        match self.budget.max_qubits {
            Some(max) if num_qubits > max => Err(RpoError::BudgetExceeded {
                kind: BudgetKind::MaxQubits,
            }),
            _ => Ok(()),
        }
    }

    /// Boundary check: the hard gate ceiling.
    ///
    /// # Errors
    ///
    /// [`RpoError::BudgetExceeded`] when the DAG holds more than
    /// [`TranspileBudget::max_gates`] nodes.
    pub fn check_gates(&self, dag: &Dag) -> Result<(), RpoError> {
        match self.budget.max_gates {
            Some(max) if dag.len() > max => Err(RpoError::BudgetExceeded {
                kind: BudgetKind::MaxGates,
            }),
            _ => Ok(()),
        }
    }

    /// Records a graceful deadline degradation (once per run).
    pub fn note_deadline(&mut self, context: &str) {
        if !self.deadline_reported {
            self.deadline_reported = true;
            self.report.budget_hits.push(BudgetHit {
                kind: BudgetKind::Deadline,
                context: context.to_string(),
            });
        }
    }

    /// Records hitting the fixed-point iteration ceiling.
    pub fn note_max_iterations(&mut self, context: &str) {
        self.report.budget_hits.push(BudgetHit {
            kind: BudgetKind::MaxIterations,
            context: context.to_string(),
        });
    }

    /// Quarantines `pass` (it will not run again this pipeline) and
    /// records why.
    pub fn quarantine(&mut self, pass: &str, reason: String) {
        self.quarantined.insert(pass.to_string());
        self.report.quarantined.push(QuarantineRecord {
            pass: pass.to_string(),
            reason,
        });
    }

    /// Whether `pass` is currently quarantined.
    pub fn is_quarantined(&self, pass: &str) -> bool {
        self.quarantined.contains(pass)
    }

    /// The degradation record so far (the final one travels on
    /// [`crate::preset::Transpiled::degradation`]).
    pub fn report(&self) -> &DegradationReport {
        &self.report
    }

    /// Consumes the guard into its report.
    pub fn into_report(self) -> DegradationReport {
        self.report
    }

    fn should_validate(&mut self, _label: &str) -> bool {
        self.executions += 1;
        #[cfg(feature = "fault-inject")]
        if crate::fault::armed_for(_label) {
            // An armed fault must not escape through release sampling.
            return true;
        }
        match self.validation {
            ValidationMode::Always => true,
            ValidationMode::Sampled(n) => {
                self.executions == 1 || self.executions.is_multiple_of(n.max(1))
            }
            ValidationMode::Off => false,
        }
    }

    /// Runs one pass under the guard: quarantine filter, deadline filter
    /// (for `optional` passes), checkpoint, `catch_unwind`, rollback +
    /// quarantine on panic/error/validation failure, and the hard gate
    /// ceiling afterwards.
    ///
    /// `label` is the stage name faults and quarantine are keyed by — for
    /// prefix stages it may differ from `pass.name()` (e.g.
    /// `"QBO(early)"` vs `"QBO"`); the fixed-point loop passes
    /// `pass.name()` itself.
    ///
    /// # Errors
    ///
    /// Only hard budget violations ([`RpoError::BudgetExceeded`]) —
    /// everything else degrades into [`GuardedRun::Skipped`].
    pub fn run_pass(
        &mut self,
        label: &'static str,
        pass: &dyn DagPass,
        dag: &mut Dag,
        props: &mut PropertySet,
        stats: &mut PassStats,
        optional: bool,
    ) -> Result<GuardedRun, RpoError> {
        if self.is_quarantined(label) {
            stats.quarantined += 1;
            return Ok(GuardedRun::Skipped);
        }
        if optional && self.predisabled.contains(label) {
            stats.predisabled += 1;
            return Ok(GuardedRun::Skipped);
        }
        if optional && self.deadline_exceeded() {
            self.note_deadline(&format!("skipping optional pass '{label}'"));
            stats.budget_skips += 1;
            return Ok(GuardedRun::Skipped);
        }
        // Budget-aware passes read the deadline from the property set.
        props.insert(BUDGET_KEY, self.snapshot());
        let validate = self.should_validate(label);
        let checkpoint = dag.clone();
        let u_before = if validate {
            spot_check_unitary(dag, pass.preserves_unitary())
        } else {
            None
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            #[cfg(feature = "fault-inject")]
            crate::fault::fire_before(label);
            let r = run_timed(pass, dag, props, stats);
            #[cfg(feature = "fault-inject")]
            if r.is_ok() {
                crate::fault::fire_after(label, dag);
            }
            r
        }));
        let report = match outcome {
            Err(payload) => {
                self.rollback(dag, props, checkpoint);
                self.quarantine(
                    label,
                    format!("panicked: {}", panic_message(payload.as_ref())),
                );
                return Ok(GuardedRun::Skipped);
            }
            Ok(Err(e)) => {
                self.rollback(dag, props, checkpoint);
                self.quarantine(label, e.to_string());
                return Ok(GuardedRun::Skipped);
            }
            Ok(Ok(report)) => report,
        };
        if validate {
            if let Err(why) = validate_dag(dag, u_before.as_ref()) {
                self.rollback(dag, props, checkpoint);
                self.quarantine(label, format!("post-pass validation failed: {why}"));
                return Ok(GuardedRun::Skipped);
            }
        }
        self.check_gates(dag)?;
        Ok(GuardedRun::Ran(report))
    }

    /// Restores the checkpoint and drops every cached analysis. The cache
    /// clear is load-bearing: the rollback rewinds the DAG's generation
    /// counter, so a later edit could reach an already-cached generation
    /// number with different content — a stale-cache hit waiting to
    /// happen.
    fn rollback(&mut self, dag: &mut Dag, props: &mut PropertySet, checkpoint: Dag) {
        *dag = checkpoint;
        props.clear();
    }
}

/// Runs a straight-line pipeline stage under the guard, appending its
/// statistics — the guarded counterpart of [`crate::manager::run_named`]
/// used by the instrumented pipelines' prefix stages.
///
/// # Errors
///
/// Only hard budget violations — see [`PassGuard::run_pass`].
pub fn run_stage(
    guard: &mut PassGuard,
    label: &'static str,
    pass: &dyn DagPass,
    dag: &mut Dag,
    props: &mut PropertySet,
    stats: &mut Vec<PassStats>,
    optional: bool,
) -> Result<(), RpoError> {
    let mut s = PassStats::new_named(label);
    guard.run_pass(label, pass, dag, props, &mut s, optional)?;
    stats.push(s);
    Ok(())
}

/// The gate-level issue in an input circuit's instruction, if any — the
/// same predicate the post-pass validator applies, reused by the
/// pipelines' input validation.
pub fn input_issue(gate: &Gate) -> Option<String> {
    gate_issue(gate)
}

/// Renders a `catch_unwind` payload as text.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs a non-pass pipeline stage (layout, routing) under panic
/// containment. These stages are mandatory — a failure cannot be
/// quarantined away — so a panic becomes a typed
/// [`RpoError::PassFailed`] instead.
///
/// # Errors
///
/// The stage's own error, or [`RpoError::PassFailed`] when it panicked.
pub fn catch_stage<T>(name: &str, f: impl FnOnce() -> Result<T, RpoError>) -> Result<T, RpoError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(payload) => Err(RpoError::PassFailed {
            pass: name.to_string(),
            cause: format!("panicked: {}", panic_message(payload.as_ref())),
        }),
    }
}

/// Ceilings under which the unitary spot check is affordable: the 2ⁿ×2ⁿ
/// accumulation is cubic in the dimension.
const SPOT_CHECK_MAX_QUBITS: usize = 3;
const SPOT_CHECK_MAX_NODES: usize = 64;

/// The checkpoint's unitary, when the circuit is small enough and fully
/// unitary and the pass claims to preserve semantics. `None` disables the
/// spot check for this run.
fn spot_check_unitary(dag: &Dag, preserves_unitary: bool) -> Option<Matrix> {
    if !preserves_unitary
        || dag.num_qubits() > SPOT_CHECK_MAX_QUBITS
        || dag.len() > SPOT_CHECK_MAX_NODES
    {
        return None;
    }
    accumulate_unitary(dag)
}

/// Multiplies the DAG's gates into one matrix without a Circuit
/// round-trip (the conversion counters stay untouched). `None` when any
/// node is non-unitary (measure/reset/directives).
fn accumulate_unitary(dag: &Dag) -> Option<Matrix> {
    let mut acc = UnitaryAccumulator::new(dag.num_qubits());
    for (_, inst) in dag.iter() {
        if !inst.gate.is_unitary_gate() {
            return None;
        }
        acc.push(&inst.gate, &inst.qubits);
    }
    Some(acc.matrix())
}

/// The post-pass validator: structural invariants, gate-level validity,
/// and the optional unitary spot check against the checkpoint.
fn validate_dag(dag: &Dag, u_before: Option<&Matrix>) -> Result<(), String> {
    dag.check_invariants()?;
    for (id, inst) in dag.iter() {
        if let Some(issue) = gate_issue(&inst.gate) {
            return Err(format!("node {id}: {issue}"));
        }
    }
    if let Some(before) = u_before {
        if let Some(after) = accumulate_unitary(dag) {
            if !after.equal_up_to_global_phase(before, 1e-6) {
                return Err("unitary spot check failed (pass changed circuit semantics)".into());
            }
        }
    }
    Ok(())
}

/// Gate-level validity: finite parameters, embedded matrices actually
/// unitary. Cheap (parameters only) except for the rare matrix gates.
fn gate_issue(gate: &Gate) -> Option<String> {
    let finite = |vals: &[f64]| vals.iter().all(|v| v.is_finite());
    match gate {
        Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::U1(t) | Gate::Cp(t) => {
            (!finite(&[*t])).then(|| format!("non-finite parameter in {}", gate.name()))
        }
        Gate::U2(a, b) | Gate::Annot(a, b) => {
            (!finite(&[*a, *b])).then(|| format!("non-finite parameter in {}", gate.name()))
        }
        Gate::U3(a, b, c) => {
            (!finite(&[*a, *b, *c])).then(|| format!("non-finite parameter in {}", gate.name()))
        }
        Gate::Cu(m) | Gate::Unitary(m) => {
            (!m.is_unitary(1e-6)).then(|| format!("embedded {} matrix is not unitary", gate.name()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::PassStats;
    use qc_circuit::{Circuit, DagEdit, Instruction};

    /// A pass that always panics.
    struct Bomb;
    impl DagPass for Bomb {
        fn name(&self) -> &'static str {
            "Bomb"
        }
        fn run_on_dag(
            &self,
            _dag: &mut Dag,
            _props: &mut PropertySet,
        ) -> Result<ChangeReport, RpoError> {
            panic!("kaboom");
        }
    }

    /// A pass that mutates the DAG (removes the first node) and then
    /// panics — rollback must restore the removed node.
    struct MutateThenPanic;
    impl DagPass for MutateThenPanic {
        fn name(&self) -> &'static str {
            "MutateThenPanic"
        }
        fn run_on_dag(
            &self,
            dag: &mut Dag,
            _props: &mut PropertySet,
        ) -> Result<ChangeReport, RpoError> {
            let first = dag.iter().next().map(|(id, _)| id);
            if let Some(id) = first {
                let mut edit = DagEdit::new();
                edit.remove(id);
                dag.apply(edit);
            }
            panic!("mid-mutation panic");
        }
    }

    /// A pass that corrupts semantics: replaces the first node with a
    /// non-unitary embedded matrix.
    struct CorruptSemantics;
    impl DagPass for CorruptSemantics {
        fn name(&self) -> &'static str {
            "CorruptSemantics"
        }
        fn run_on_dag(
            &self,
            dag: &mut Dag,
            _props: &mut PropertySet,
        ) -> Result<ChangeReport, RpoError> {
            let first = dag.iter().next().map(|(id, inst)| (id, inst.qubits[0]));
            if let Some((id, q)) = first {
                let bad = Matrix::from_fn(2, 2, |_, _| qc_math::C64::real(3.0));
                let mut edit = DagEdit::new();
                edit.replace(id, vec![Instruction::new(Gate::Unitary(bad), vec![q])]);
                return Ok(dag.apply(edit));
            }
            Ok(ChangeReport::none(dag.num_qubits()))
        }
    }

    fn guarded(pass: &dyn DagPass, dag: &mut Dag) -> (GuardedRun, DegradationReport) {
        let mut guard =
            PassGuard::new(TranspileBudget::unlimited()).with_validation(ValidationMode::Always);
        let mut props = PropertySet::new();
        let mut stats = PassStats::new_named(pass.name());
        let run = guard
            .run_pass(pass.name(), pass, dag, &mut props, &mut stats, true)
            .unwrap();
        (run, guard.into_report())
    }

    #[test]
    fn panicking_pass_is_rolled_back_and_quarantined() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut dag = Dag::from_circuit(&c);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (run, report) = guarded(&Bomb, &mut dag);
        std::panic::set_hook(hook);
        assert!(matches!(run, GuardedRun::Skipped));
        assert!(report.is_quarantined("Bomb"));
        assert!(report.quarantined[0].reason.contains("kaboom"));
        assert_eq!(dag.len(), 2);
        dag.check_invariants().unwrap();
    }

    #[test]
    fn mid_mutation_panic_restores_checkpoint() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1);
        let mut dag = Dag::from_circuit(&c);
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let (_, report) = guarded(&MutateThenPanic, &mut dag);
        std::panic::set_hook(hook);
        assert!(report.is_quarantined("MutateThenPanic"));
        assert_eq!(dag.len(), 3, "mutation must be rolled back");
        assert_eq!(dag.to_circuit(), c);
    }

    #[test]
    fn semantic_corruption_is_caught_by_validation() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut dag = Dag::from_circuit(&c);
        let (run, report) = guarded(&CorruptSemantics, &mut dag);
        assert!(matches!(run, GuardedRun::Skipped));
        assert!(report.is_quarantined("CorruptSemantics"));
        assert_eq!(dag.to_circuit(), c, "corruption must be rolled back");
    }

    #[test]
    fn quarantined_pass_never_runs_again() {
        let mut c = Circuit::new(1);
        c.x(0);
        let mut dag = Dag::from_circuit(&c);
        let mut guard = PassGuard::new(TranspileBudget::unlimited());
        let mut props = PropertySet::new();
        let mut stats = PassStats::new_named("Bomb");
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for _ in 0..3 {
            guard
                .run_pass("Bomb", &Bomb, &mut dag, &mut props, &mut stats, true)
                .unwrap();
        }
        std::panic::set_hook(hook);
        assert_eq!(stats.quarantined, 2, "second and third calls skip");
        assert_eq!(guard.report().quarantined.len(), 1);
    }

    #[test]
    fn deadline_skips_optional_passes() {
        let mut c = Circuit::new(1);
        c.x(0);
        let mut dag = Dag::from_circuit(&c);
        let mut guard = PassGuard::new(TranspileBudget::unlimited().with_deadline(Duration::ZERO));
        let mut props = PropertySet::new();
        let mut stats = PassStats::new_named("CorruptSemantics");
        let run = guard
            .run_pass(
                "CorruptSemantics",
                &CorruptSemantics,
                &mut dag,
                &mut props,
                &mut stats,
                true,
            )
            .unwrap();
        assert!(matches!(run, GuardedRun::Skipped));
        assert_eq!(stats.budget_skips, 1);
        assert_eq!(guard.report().budget_hits.len(), 1);
        assert_eq!(guard.report().budget_hits[0].kind, BudgetKind::Deadline);
        // Mandatory stages still run at deadline.
        let mut stats2 = PassStats::new_named("CorruptSemantics");
        let run = guard
            .run_pass(
                "CorruptSemantics",
                &CorruptSemantics,
                &mut dag,
                &mut props,
                &mut stats2,
                false,
            )
            .unwrap();
        // With Always-validation (debug) the corruption is contained by
        // quarantine instead; either way the stage was attempted.
        assert!(
            !matches!(run, GuardedRun::Skipped)
                || guard.report().is_quarantined("CorruptSemantics")
        );
    }

    #[test]
    fn hard_gate_budget_is_typed_error() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1);
        let dag = Dag::from_circuit(&c);
        let guard = PassGuard::new(TranspileBudget::unlimited().with_max_gates(2));
        assert!(matches!(
            guard.check_gates(&dag),
            Err(RpoError::BudgetExceeded {
                kind: BudgetKind::MaxGates
            })
        ));
        let guard = PassGuard::new(TranspileBudget::unlimited().with_max_qubits(1));
        assert!(matches!(
            guard.check_qubits(dag.num_qubits()),
            Err(RpoError::BudgetExceeded {
                kind: BudgetKind::MaxQubits
            })
        ));
    }
}
