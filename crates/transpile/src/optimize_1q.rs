//! `Optimize1qGates`: merge runs of single-qubit gates into one u-gate.
//!
//! The paper relies on this Qiskit pass in two ways: it fuses the `U`/`U⁻¹`
//! dressing gates that QPO introduces around SWAPZ into neighboring
//! single-qubit gates (Section IV), and it prepares single-u3 wires for QPO's
//! pure-state tracking (Fig. 8, line 7).

use crate::{Pass, TranspileError};
use qc_circuit::{Circuit, Dag, Gate, Instruction};
use qc_synth::euler::OneQubitEuler;

/// Merges maximal single-qubit gate runs into at most one u-gate each.
#[derive(Default)]
pub struct Optimize1qGates;

/// The merge plan over a DAG, indexed by node id: `plan[id]`: `None` =
/// keep node `id`; `Some(None)` = drop it; `Some(Some(g))` = replace it
/// with `g`. Shared by the circuit-level and DAG-native drivers.
fn plan_runs(dag: &Dag) -> Result<Vec<Option<Option<Gate>>>, TranspileError> {
    let runs = dag.single_qubit_runs();
    let mut replacement: Vec<Option<Option<Gate>>> = vec![None; dag.capacity()];
    for run in runs {
        // Multiply matrices in time order (later gates on the left),
        // accumulating on the stack; one heap matrix per run, not per
        // gate.
        let mut m = [
            qc_math::C64::ONE,
            qc_math::C64::ZERO,
            qc_math::C64::ZERO,
            qc_math::C64::ONE,
        ];
        for &node in &run {
            let g = &dag.inst(node).gate;
            let gm = g.matrix2x2().ok_or_else(|| {
                TranspileError::Internal(format!("non-unitary gate {g} in 1q run"))
            })?;
            m = qc_math::mul_2x2(&gm, &m);
        }
        let merged =
            OneQubitEuler::from_matrix(&qc_math::Matrix::from_vec(2, 2, m.to_vec())).to_gate();
        let head = run[0];
        for &node in &run {
            replacement[node] = Some(None);
        }
        if !matches!(merged, Gate::I) {
            replacement[head] = Some(Some(merged));
        }
    }
    Ok(replacement)
}

impl Pass for Optimize1qGates {
    fn name(&self) -> &'static str {
        "Optimize1qGates"
    }

    fn run(&self, circuit: &mut Circuit) -> Result<(), TranspileError> {
        let dag = Dag::from_circuit(circuit);
        let mut replacement = plan_runs(&dag)?;
        let mut out: Vec<Instruction> = Vec::with_capacity(circuit.len());
        for (i, inst) in circuit.instructions().iter().enumerate() {
            match replacement[i].take() {
                None => out.push(inst.clone()),
                Some(None) => {}
                Some(Some(g)) => out.push(Instruction::new(g, inst.qubits.clone())),
            }
        }
        circuit.set_instructions(out);
        Ok(())
    }
}

impl crate::manager::DagPass for Optimize1qGates {
    fn name(&self) -> &'static str {
        "Optimize1qGates"
    }

    fn interest(&self) -> crate::manager::PassInterest {
        // Any wire carrying a 1q unitary is interesting — even a singleton
        // run rewrites when its gate is not already in the Euler-canonical
        // u-form, so the pass deliberately over-approximates past "≥ 2
        // adjacent 1q nodes" (see the PassInterest contract).
        crate::manager::PassInterest::gate_classes(qc_circuit::gate_class::ONE_Q)
    }

    fn run_on_dag(
        &self,
        dag: &mut qc_circuit::Dag,
        _props: &mut crate::manager::PropertySet,
    ) -> Result<qc_circuit::ChangeReport, TranspileError> {
        let replacement = plan_runs(dag)?;
        let mut edit = qc_circuit::DagEdit::new();
        for (i, r) in replacement.into_iter().enumerate() {
            match r {
                None => {}
                Some(None) => edit.remove(i),
                // A single-gate run that merges back to the identical gate
                // is not a rewrite.
                Some(Some(g)) if g == dag.inst(i).gate => {}
                Some(Some(g)) => {
                    let qs = dag.inst(i).qubits.clone();
                    edit.replace(i, vec![Instruction::new(g, qs)]);
                }
            }
        }
        Ok(dag.apply(edit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_circuit::circuit_unitary;

    fn optimized(c: &Circuit) -> Circuit {
        let mut out = c.clone();
        Optimize1qGates.run(&mut out).unwrap();
        out
    }

    #[test]
    fn merges_h_h_to_nothing() {
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        let out = optimized(&c);
        assert_eq!(out.gate_counts().total, 0);
    }

    #[test]
    fn merges_s_s_to_u1() {
        let mut c = Circuit::new(1);
        c.s(0).s(0);
        let out = optimized(&c);
        assert_eq!(out.gate_counts().total, 1);
        assert!(matches!(
            out.instructions()[0].gate,
            Gate::U1(l) if (l - std::f64::consts::PI).abs() < 1e-9
        ));
    }

    #[test]
    fn preserves_semantics_across_cx() {
        let mut c = Circuit::new(2);
        c.h(0)
            .t(0)
            .s(0)
            .cx(0, 1)
            .tdg(1)
            .h(1)
            .sdg(1)
            .rx(0.4, 0)
            .rz(0.2, 0);
        let out = optimized(&c);
        assert!(circuit_unitary(&out).equal_up_to_global_phase(&circuit_unitary(&c), 1e-8));
        // Three runs → at most three 1q gates.
        assert!(out.gate_counts().single_qubit <= 3);
    }

    #[test]
    fn runs_not_merged_across_barrier() {
        let mut c = Circuit::new(1);
        c.h(0).barrier().h(0);
        let out = optimized(&c);
        // Two separate runs of one H each; H stays (as u2).
        assert_eq!(out.gate_counts().single_qubit, 2);
    }

    #[test]
    fn single_gates_canonicalized() {
        let mut c = Circuit::new(1);
        c.z(0);
        let out = optimized(&c);
        assert!(matches!(out.instructions()[0].gate, Gate::U1(_)));
    }

    #[test]
    fn identity_gates_removed() {
        let mut c = Circuit::new(2);
        c.id(0).id(1).cx(0, 1).id(0);
        let out = optimized(&c);
        assert_eq!(out.gate_counts().total, 1);
    }
}
