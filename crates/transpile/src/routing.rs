//! Stochastic SWAP routing.
//!
//! Makes every two-qubit gate act on coupled qubits by inserting SWAP
//! gates, mirroring Qiskit's `StochasticSwap`: a greedy distance heuristic
//! with randomized tie-breaking, re-run over several seeded trials keeping
//! the cheapest result. The paper's protocol (Section VII-B) medians 25
//! whole-transpile runs precisely because this stage is stochastic — every
//! random choice here is driven by an explicit seed.
//!
//! Inserted SWAPs are left as [`Gate::Swap`] instructions; the RPO pipeline
//! runs its post-routing QBO over them *before* they are unrolled (Fig. 8,
//! line 5), which is where SWAP → SWAPZ rewrites happen.

use crate::guard::BudgetSnapshot;
use crate::TranspileError;
use qc_backends::Backend;
use qc_circuit::{Circuit, Dag, Gate, Instruction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The routed circuit plus the wire permutation induced by the inserted
/// SWAPs.
#[derive(Clone, Debug)]
pub struct Routed {
    /// The routed circuit (physical wires).
    pub circuit: Circuit,
    /// `wire_map[w]` = physical qubit that holds input wire `w`'s state at
    /// measurement time (or at the end of the circuit).
    pub wire_map: Vec<usize>,
    /// Number of SWAP gates inserted.
    pub swaps_added: usize,
}

/// Routes `circuit` (already on physical wires) for `backend`, trying
/// `trials` seeded runs and keeping the one with the fewest SWAPs.
///
/// # Errors
///
/// Returns an error if the circuit is wider than the backend or if the
/// router fails to make progress (disconnected coupling graph).
pub fn route(
    circuit: &Circuit,
    backend: &Backend,
    seed: u64,
    trials: usize,
) -> Result<Routed, TranspileError> {
    let dag = Dag::from_circuit(circuit);
    route_dag(&dag, backend, seed, trials)
}

/// [`route`] over an existing DAG — the entry the DAG-native pipeline uses
/// so routing triggers no Circuit↔Dag conversion of its own.
///
/// # Errors
///
/// Same failure modes as [`route`].
pub fn route_dag(
    dag: &Dag,
    backend: &Backend,
    seed: u64,
    trials: usize,
) -> Result<Routed, TranspileError> {
    route_dag_budgeted(dag, backend, seed, trials, BudgetSnapshot::unlimited()).map(|(r, _)| r)
}

/// [`route_dag`] under a deadline: trial 0 always runs (routing is
/// mandatory — there must be *a* routed circuit), later trials are skipped
/// once the budget's deadline passes and the best result so far is kept.
/// Returns the routed result and the number of trials actually run, so the
/// caller can record the degradation.
///
/// # Errors
///
/// Same failure modes as [`route`].
pub fn route_dag_budgeted(
    dag: &Dag,
    backend: &Backend,
    seed: u64,
    trials: usize,
    budget: BudgetSnapshot,
) -> Result<(Routed, usize), TranspileError> {
    if dag.num_qubits() > backend.num_qubits() {
        return Err(TranspileError::too_many_qubits(
            dag.num_qubits(),
            backend.num_qubits(),
        ));
    }
    let dist = backend.distance_matrix();
    let mut best: Option<Routed> = None;
    let mut ran = 0usize;
    for t in 0..trials.max(1) {
        if t > 0 && budget.exceeded() {
            break;
        }
        let r = route_once(dag, backend, &dist, seed.wrapping_add(t as u64))?;
        ran += 1;
        if best
            .as_ref()
            .map(|b| r.swaps_added < b.swaps_added)
            .unwrap_or(true)
        {
            best = Some(r);
        }
    }
    match best {
        Some(b) => Ok((b, ran)),
        None => Err(TranspileError::Internal("no routing trial ran".into())),
    }
}

fn route_once(
    dag: &Dag,
    backend: &Backend,
    dist: &[Vec<usize>],
    seed: u64,
) -> Result<Routed, TranspileError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = backend.num_qubits();
    let mut sched = dag.scheduler();
    let mut out = Circuit::new(n);
    // perm[w] = physical qubit currently holding wire w.
    let mut perm: Vec<usize> = (0..n).collect();
    let mut wire_map: Vec<usize> = (0..n).collect();
    let mut measured = vec![false; n];
    let mut pending_measures: Vec<usize> = Vec::new();
    let mut swaps_added = 0usize;
    let mut stall = 0usize;
    let stall_limit = 4 * (dag.len() + n) * n.max(4);

    while !sched.is_done() {
        // Execute everything executable.
        let mut progressed = false;
        loop {
            let ready: Vec<usize> = sched.ready().to_vec();
            let mut fired = false;
            for node in ready {
                let inst = dag.inst(node);
                let mapped: Vec<usize> = inst.qubits.iter().map(|&q| perm[q]).collect();
                let executable = match mapped.len() {
                    0 | 1 => true,
                    2 => {
                        // `dist == 1` ⟺ coupled: O(1) against the BFS
                        // matrix instead of the backend's edge-list scan.
                        !inst.gate.is_unitary_gate()
                            || inst.gate.is_directive()
                            || dist[mapped[0]][mapped[1]] == 1
                    }
                    _ => {
                        // Multi-qubit unitary gates must be unrolled before
                        // routing; barriers and the like pass through.
                        if inst.gate.is_unitary_gate() && !inst.gate.is_directive() {
                            return Err(TranspileError::Internal(format!(
                                "{}-qubit gate {} reached the router",
                                mapped.len(),
                                inst.gate
                            )));
                        }
                        true
                    }
                };
                if executable {
                    if matches!(inst.gate, Gate::Measure) {
                        // Defer to the end of the circuit: a later routing
                        // SWAP could otherwise move the state away from the
                        // physical qubit the measure was emitted on.
                        pending_measures.push(inst.qubits[0]);
                        measured[inst.qubits[0]] = true;
                    } else {
                        out.push_instruction(Instruction::new(inst.gate.clone(), mapped));
                    }
                    sched.execute(node);
                    fired = true;
                    progressed = true;
                }
            }
            if !fired {
                break;
            }
        }
        if sched.is_done() {
            break;
        }
        // Blocked: every ready node is a non-adjacent 2-qubit gate. Pick a
        // SWAP that reduces the summed front-layer distance.
        let front: Vec<(usize, usize)> = sched
            .ready()
            .iter()
            .map(|&node| {
                let q = &dag.inst(node).qubits;
                (perm[q[0]], perm[q[1]])
            })
            .collect();
        let mut candidates: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in &front {
            for &(u, v) in backend.coupling() {
                if u == a || v == a || u == b || v == b {
                    let e = (u.min(v), u.max(v));
                    if !candidates.contains(&e) {
                        candidates.push(e);
                    }
                }
            }
        }
        if candidates.is_empty() {
            return Err(TranspileError::Internal(
                "router found no candidate swaps (disconnected coupling?)".into(),
            ));
        }
        let score = |swap: (usize, usize)| -> usize {
            front
                .iter()
                .map(|&(a, b)| {
                    let m = |q: usize| {
                        if q == swap.0 {
                            swap.1
                        } else if q == swap.1 {
                            swap.0
                        } else {
                            q
                        }
                    };
                    dist[m(a)][m(b)]
                })
                .sum()
        };
        let chosen = if rng.gen::<f64>() < 0.1 {
            candidates[rng.gen_range(0..candidates.len())]
        } else {
            let mut best_score = usize::MAX;
            let mut best_set: Vec<(usize, usize)> = Vec::new();
            for &cand in &candidates {
                let s = score(cand);
                if s < best_score {
                    best_score = s;
                    best_set = vec![cand];
                } else if s == best_score {
                    best_set.push(cand);
                }
            }
            best_set[rng.gen_range(0..best_set.len())]
        };
        out.swap(chosen.0, chosen.1);
        swaps_added += 1;
        // Update the wire permutation.
        let held_by = |phys: usize| {
            perm.iter().position(|&p| p == phys).ok_or_else(|| {
                TranspileError::Internal(format!("physical qubit {phys} held by no wire"))
            })
        };
        let wa = held_by(chosen.0)?;
        let wb = held_by(chosen.1)?;
        perm.swap(wa, wb);
        stall += 1;
        if progressed {
            stall = 0;
        }
        if stall > stall_limit {
            return Err(TranspileError::Internal(
                "router stalled without progress".into(),
            ));
        }
    }
    // Emit deferred measurements at the final positions, and report final
    // positions for unmeasured wires too.
    for w in pending_measures {
        out.measure(perm[w]);
        wire_map[w] = perm[w];
    }
    for w in 0..n {
        if !measured[w] {
            wire_map[w] = perm[w];
        }
    }
    Ok(Routed {
        circuit: out,
        wire_map,
        swaps_added,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_two_qubit_gates_adjacent(c: &Circuit, backend: &Backend) -> bool {
        c.instructions().iter().all(|inst| {
            inst.qubits.len() != 2
                || !inst.gate.is_unitary_gate()
                || backend.are_adjacent(inst.qubits[0], inst.qubits[1])
        })
    }

    #[test]
    fn already_routable_circuit_untouched() {
        let backend = Backend::linear(3);
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let r = route(&c, &backend, 1, 3).unwrap();
        assert_eq!(r.swaps_added, 0);
        assert_eq!(r.circuit.gate_counts().cx, 2);
    }

    #[test]
    fn distant_gate_gets_swaps() {
        let backend = Backend::linear(4);
        let mut c = Circuit::new(4);
        c.cx(0, 3);
        let r = route(&c, &backend, 1, 5).unwrap();
        assert!(r.swaps_added >= 1);
        assert!(all_two_qubit_gates_adjacent(&r.circuit, &backend));
    }

    #[test]
    fn routed_circuit_is_functionally_correct() {
        // Verify on the unitary level: routed circuit followed by the
        // inverse permutation equals the original.
        let backend = Backend::linear(4);
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 3).cx(1, 2).t(3).cx(3, 0);
        let r = route(&c, &backend, 7, 5).unwrap();
        // Build: routed + swaps undoing the final permutation.
        let mut undo = r.circuit.clone();
        // r.wire_map[w] = final physical position of wire w (no measures
        // here). Sort wires back with explicit swaps.
        let mut pos = r.wire_map.clone();
        for w in 0..4 {
            if pos[w] != w {
                let other = pos.iter().position(|&p| p == w).unwrap();
                undo.swap(pos[w], w);
                pos.swap(w, other);
            }
        }
        let expect = {
            let mut big = Circuit::new(backend.num_qubits());
            big.extend(&c);
            big
        };
        assert!(qc_circuit::circuit_unitary(&undo)
            .equal_up_to_global_phase(&qc_circuit::circuit_unitary(&expect), 1e-7));
    }

    #[test]
    fn measure_records_physical_position() {
        let backend = Backend::linear(3);
        let mut c = Circuit::new(3);
        c.cx(0, 2).measure_all();
        let r = route(&c, &backend, 3, 5).unwrap();
        // All wire positions are distinct physical qubits.
        let mut wm: Vec<usize> = r.wire_map.clone();
        wm.sort_unstable();
        wm.dedup();
        assert_eq!(wm.len(), 3);
    }

    #[test]
    fn trials_pick_cheapest() {
        let backend = Backend::melbourne();
        let mut c = Circuit::new(6);
        for i in 0..6 {
            for j in i + 1..6 {
                c.cx(i, j);
            }
        }
        let r1 = route(&c, &backend, 11, 1).unwrap();
        let r25 = route(&c, &backend, 11, 25).unwrap();
        assert!(r25.swaps_added <= r1.swaps_added);
    }

    #[test]
    fn deterministic_per_seed() {
        let backend = Backend::melbourne();
        let mut c = Circuit::new(5);
        c.cx(0, 4).cx(1, 3).cx(2, 4).cx(0, 3);
        let a = route(&c, &backend, 42, 4).unwrap();
        let b = route(&c, &backend, 42, 4).unwrap();
        assert_eq!(a.circuit, b.circuit);
        assert_eq!(a.wire_map, b.wire_map);
    }

    #[test]
    fn rejects_oversized_circuit() {
        let backend = Backend::linear(2);
        let c = Circuit::new(3);
        assert!(matches!(
            route(&c, &backend, 0, 1),
            Err(TranspileError::InvalidInput(_))
        ));
    }
}
