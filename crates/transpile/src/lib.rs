//! A quantum-circuit transpiler modeled on the Qiskit pipeline the RPO
//! paper extends.
//!
//! The paper's Fig. 8 pipeline (optimization level 3) is:
//!
//! ```text
//! 1  QBO()                      ← RPO addition (crate `rpo-core`)
//! 2  Unroller(basis_gates)
//! 3  <layout selection>
//! 4  <routing process>
//! 5  QBO()                      ← RPO addition
//! 6  Unroller(basis + swap + swapz)   ← RPO addition
//! 7  Optimize1qGates()
//! 8  QPO()                      ← RPO addition
//! 9  while not <fixed point> { <optimizations> }
//! ```
//!
//! This crate provides everything except the RPO passes themselves: the
//! [`Pass`] abstraction, the [`unroll::Unroller`], [`optimize_1q`],
//! [`cancellation`], [`consolidate`] (Collect2qBlocks + ConsolidateBlocks),
//! [`layout`] selection, the seeded stochastic [`routing`] pass, and the
//! preset level 0–3 pipelines in [`preset`]. The stages are exposed
//! individually so `rpo-core` can interleave its passes exactly as in the
//! paper.
//!
//! # Examples
//!
//! ```
//! use qc_backends::Backend;
//! use qc_circuit::Circuit;
//! use qc_transpile::{transpile, TranspileOptions};
//!
//! let mut ghz = Circuit::new(3);
//! ghz.h(0).cx(0, 1).cx(1, 2).measure_all();
//! let out = transpile(&ghz, &Backend::melbourne(), &TranspileOptions::level(3)).unwrap();
//! assert_eq!(out.circuit.num_qubits(), 15);
//! ```

pub mod cancellation;
pub mod commutation;
pub mod consolidate;
#[cfg(feature = "fault-inject")]
pub mod fault;
pub mod guard;
pub mod layout;
pub mod manager;
pub mod optimize_1q;
pub mod preset;
/// The retained pre-refactor circuit-roundtrip pipeline — the property-test
/// oracle. Compiled only for tests and under the `reference-oracles`
/// feature, so release builds skip it entirely.
#[cfg(any(test, feature = "reference-oracles"))]
pub mod reference;
pub mod routing;
pub mod unroll;

pub use guard::{
    catch_stage, BudgetHit, BudgetSnapshot, DegradationReport, GuardedRun, PassGuard, PassSet,
    QuarantineRecord, TranspileBudget, ValidationMode, BUDGET_KEY, DISABLEABLE_PASSES,
};
pub use manager::{
    BlocksAnalysis, CommutationAnalysis, DagPass, FixedPointLoop, PassInterest, PassStats,
    PropertySet,
};
pub use preset::{transpile, TranspileOptions};

use qc_circuit::Circuit;

/// The shared typed error taxonomy (defined in `qc_circuit`, used by
/// every layer of the stack).
pub use qc_circuit::{BudgetKind, RpoError};

/// Errors produced by transpilation — an alias for the shared [`RpoError`]
/// taxonomy, kept so the crate's historical `Result<_, TranspileError>`
/// signatures stay stable.
pub type TranspileError = RpoError;

/// A circuit-to-circuit transformation — the *circuit-level* pass
/// abstraction.
///
/// The preset pipelines themselves are DAG-native ([`DagPass`] over the
/// shared [`qc_circuit::Dag`] IR); this trait remains for standalone use
/// of a single pass on a [`Circuit`] and for the retained pre-refactor
/// reference pipeline ([`reference`]) that the property tests use as the
/// gate-for-gate oracle. Every pass implements both traits through one
/// shared rewrite core, so the two views cannot drift apart.
pub trait Pass {
    /// Short pass name for logging and diagnostics.
    fn name(&self) -> &'static str;

    /// Transforms the circuit in place.
    ///
    /// # Errors
    ///
    /// Returns a [`TranspileError`] when the circuit cannot be processed
    /// (unsupported gate, resource mismatch).
    fn run(&self, circuit: &mut Circuit) -> Result<(), TranspileError>;
}

/// Runs a sequence of passes in order.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// Creates an empty pass manager.
    pub fn new() -> Self {
        PassManager { passes: Vec::new() }
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Runs all passes on a copy of the input circuit.
    ///
    /// # Errors
    ///
    /// Propagates the first pass failure.
    pub fn run(&self, circuit: &Circuit) -> Result<Circuit, TranspileError> {
        let mut c = circuit.clone();
        for pass in &self.passes {
            pass.run(&mut c)?;
        }
        Ok(c)
    }

    /// Names of the registered passes, in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Count;
    impl Pass for Count {
        fn name(&self) -> &'static str {
            "count"
        }
        fn run(&self, circuit: &mut Circuit) -> Result<(), TranspileError> {
            circuit.x(0);
            Ok(())
        }
    }

    #[test]
    fn pass_manager_runs_in_order() {
        let mut pm = PassManager::new();
        pm.add(Box::new(Count)).add(Box::new(Count));
        let c = Circuit::new(1);
        let out = pm.run(&c).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(pm.pass_names(), vec!["count", "count"]);
        // Input untouched.
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn error_display() {
        let e = TranspileError::too_many_qubits(20, 15);
        assert!(e.to_string().contains("20"));
        let e = TranspileError::unsupported_gate("foo");
        assert!(e.to_string().contains("foo"));
    }
}
