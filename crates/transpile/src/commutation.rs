//! Commutation-aware gate merging (Qiskit's `CommutativeCancellation`).
//!
//! The paper's level-2/3 baseline includes a "gate-cancellation procedure
//! based on gate commutation relationships" (Section II-B). This pass
//! implements the workhorse cases: Z-diagonal rotations commute through
//! CNOT *controls* and X-axis rotations through CNOT *targets*, so
//! same-wire rotations separated only by such CNOT anchors merge into one
//! gate (and cancel outright when the angles sum to zero).

use crate::{Pass, TranspileError};
use qc_circuit::{Circuit, Gate, Instruction};
use qc_synth::euler::normalize_angle;
use std::f64::consts::{FRAC_PI_2, PI};

/// Which commutation family a 1-qubit gate belongs to.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Family {
    /// Diagonal in Z: commutes with a CNOT control on the same wire.
    ZPhase(f64),
    /// X-axis rotation: commutes with a CNOT target on the same wire.
    XRotation(f64),
    /// Anything else.
    Other,
}

fn family(g: &Gate) -> Family {
    match g {
        Gate::Z => Family::ZPhase(PI),
        Gate::S => Family::ZPhase(FRAC_PI_2),
        Gate::Sdg => Family::ZPhase(-FRAC_PI_2),
        Gate::T => Family::ZPhase(PI / 4.0),
        Gate::Tdg => Family::ZPhase(-PI / 4.0),
        Gate::U1(l) => Family::ZPhase(*l),
        Gate::Rz(l) => Family::ZPhase(*l),
        Gate::I => Family::ZPhase(0.0),
        Gate::X => Family::XRotation(PI),
        Gate::Rx(t) => Family::XRotation(*t),
        _ => Family::Other,
    }
}

/// Merges commuting same-wire rotation runs across CNOT anchors.
#[derive(Default)]
pub struct CommutativeCancellation;

/// The merge plan over an instruction stream — shared by the circuit-level
/// and DAG-native drivers. `insts` yields `(key, instruction)` pairs in
/// program order (instruction positions for the circuit driver, node ids
/// for the DAG driver); `cap` bounds the keys. `plan[key]`: `None` = keep
/// the instruction; `Some(None)` = drop it; `Some(Some(g))` = replace it
/// with `g` on the same qubits.
fn plan_merges<'a>(
    insts: impl Iterator<Item = (usize, &'a Instruction)>,
    n: usize,
    cap: usize,
) -> Vec<Option<Option<Gate>>> {
    // For every wire, accumulate the active commuting run: the family,
    // the summed angle, and the index of the first gate in the run.
    #[derive(Clone, Copy)]
    struct Run {
        kind: u8, // 0 = z, 1 = x
        angle: f64,
        head: usize,
    }
    let mut runs: Vec<Option<Run>> = vec![None; n];
    // replacement[key]: None = keep; Some(None) = drop; Some(Some(g)) = emit g.
    let mut replacement: Vec<Option<Option<Gate>>> = vec![None; cap];

    let flush =
        |runs: &mut Vec<Option<Run>>, replacement: &mut Vec<Option<Option<Gate>>>, q: usize| {
            if let Some(run) = runs[q].take() {
                let angle = normalize_angle(run.angle);
                let merged = if angle.abs() < 1e-12 {
                    None
                } else if run.kind == 0 {
                    Some(Gate::U1(angle))
                } else {
                    Some(Gate::Rx(angle))
                };
                replacement[run.head] = Some(merged);
            }
        };

    for (i, inst) in insts {
        match (&inst.gate, inst.qubits.len()) {
            (Gate::Cx, 2) => {
                // Z-runs pass through the control; X-runs through the
                // target; the crossing runs flush.
                let (c, t) = (inst.qubits[0], inst.qubits[1]);
                if let Some(run) = runs[c] {
                    if run.kind != 0 {
                        flush(&mut runs, &mut replacement, c);
                    }
                }
                if let Some(run) = runs[t] {
                    if run.kind != 1 {
                        flush(&mut runs, &mut replacement, t);
                    }
                }
            }
            (g, 1) if g.is_unitary_gate() => {
                let q = inst.qubits[0];
                match family(g) {
                    Family::ZPhase(a) => match &mut runs[q] {
                        Some(run) if run.kind == 0 => {
                            run.angle += a;
                            replacement[i] = Some(None);
                        }
                        _ => {
                            flush(&mut runs, &mut replacement, q);
                            runs[q] = Some(Run {
                                kind: 0,
                                angle: a,
                                head: i,
                            });
                            replacement[i] = Some(None); // head re-emitted at flush
                        }
                    },
                    Family::XRotation(a) => match &mut runs[q] {
                        Some(run) if run.kind == 1 => {
                            run.angle += a;
                            replacement[i] = Some(None);
                        }
                        _ => {
                            flush(&mut runs, &mut replacement, q);
                            runs[q] = Some(Run {
                                kind: 1,
                                angle: a,
                                head: i,
                            });
                            replacement[i] = Some(None);
                        }
                    },
                    Family::Other => flush(&mut runs, &mut replacement, q),
                }
            }
            _ => {
                for &q in &inst.qubits {
                    flush(&mut runs, &mut replacement, q);
                }
            }
        }
    }
    for q in 0..n {
        flush(&mut runs, &mut replacement, q);
    }
    replacement
}

impl Pass for CommutativeCancellation {
    fn name(&self) -> &'static str {
        "CommutativeCancellation"
    }

    fn run(&self, circuit: &mut Circuit) -> Result<(), TranspileError> {
        let n = circuit.num_qubits();
        let insts = circuit.instructions().to_vec();
        let mut replacement = plan_merges(insts.iter().enumerate(), n, insts.len());
        let mut out: Vec<Instruction> = Vec::with_capacity(insts.len());
        for (i, inst) in insts.into_iter().enumerate() {
            match replacement[i].take() {
                None => out.push(inst),
                Some(None) => {}
                Some(Some(g)) => out.push(Instruction::new(g, inst.qubits)),
            }
        }
        circuit.set_instructions(out);
        Ok(())
    }
}

impl crate::manager::DagPass for CommutativeCancellation {
    fn name(&self) -> &'static str {
        "CommutativeCancellation"
    }

    fn interest(&self) -> crate::manager::PassInterest {
        // Runs are per-wire sequences of Z-phase / X-rotation family
        // gates; a change on a wire carrying neither family cannot create
        // or connect one.
        use qc_circuit::gate_class::{ONE_Q_DIAG, ONE_Q_X};
        crate::manager::PassInterest::gate_classes(ONE_Q_DIAG | ONE_Q_X)
    }

    fn run_on_dag(
        &self,
        dag: &mut qc_circuit::Dag,
        _props: &mut crate::manager::PropertySet,
    ) -> Result<qc_circuit::ChangeReport, TranspileError> {
        let replacement = plan_merges(dag.iter(), dag.num_qubits(), dag.capacity());
        let mut edit = qc_circuit::DagEdit::new();
        for (i, r) in replacement.into_iter().enumerate() {
            match r {
                None => {}
                Some(None) => edit.remove(i),
                // Re-emitting the identical gate (a lone run flushing back
                // to itself) is not a rewrite: suppressing it keeps the
                // stream byte-identical and the change report honest.
                Some(Some(g)) if g == dag.inst(i).gate => {}
                Some(Some(g)) => {
                    let qs = dag.inst(i).qubits.clone();
                    edit.replace(i, vec![Instruction::new(g, qs)]);
                }
            }
        }
        Ok(dag.apply(edit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_circuit::circuit_unitary;

    fn run(c: &Circuit) -> Circuit {
        let mut out = c.clone();
        CommutativeCancellation.run(&mut out).unwrap();
        assert!(
            circuit_unitary(&out).equal_up_to_global_phase(&circuit_unitary(c), 1e-9),
            "commutative cancellation changed semantics\n{c}\n{out}"
        );
        out
    }

    #[test]
    fn t_gates_merge_across_cx_control() {
        let mut c = Circuit::new(2);
        c.t(0).cx(0, 1).t(0);
        let out = run(&c);
        assert_eq!(out.gate_counts().single_qubit, 1);
        assert!(matches!(
            out.instructions().iter().find(|i| i.qubits == vec![0]).unwrap().gate,
            Gate::U1(l) if (l - FRAC_PI_2).abs() < 1e-12
        ));
    }

    #[test]
    fn s_and_sdg_cancel_across_control() {
        let mut c = Circuit::new(2);
        c.s(0).cx(0, 1).sdg(0);
        let out = run(&c);
        assert_eq!(out.gate_counts().single_qubit, 0);
        assert_eq!(out.gate_counts().cx, 1);
    }

    #[test]
    fn x_cancels_across_target() {
        let mut c = Circuit::new(2);
        c.x(1).cx(0, 1).x(1);
        let out = run(&c);
        assert_eq!(out.gate_counts().single_qubit, 0);
    }

    #[test]
    fn rx_merges_across_target() {
        let mut c = Circuit::new(2);
        c.rx(0.3, 1).cx(0, 1).rx(0.4, 1).cx(0, 1).rx(-0.7, 1);
        let out = run(&c);
        assert_eq!(out.gate_counts().single_qubit, 0);
        assert_eq!(out.gate_counts().cx, 2);
    }

    #[test]
    fn z_run_does_not_cross_target() {
        let mut c = Circuit::new(2);
        c.t(1).cx(0, 1).tdg(1);
        let out = run(&c);
        // T on the *target* must not merge through the CNOT.
        assert_eq!(out.gate_counts().single_qubit, 2);
    }

    #[test]
    fn x_run_does_not_cross_control() {
        let mut c = Circuit::new(2);
        c.x(0).cx(0, 1).x(0);
        let out = run(&c);
        assert_eq!(out.gate_counts().single_qubit, 2);
    }

    #[test]
    fn hadamard_breaks_runs() {
        let mut c = Circuit::new(2);
        c.t(0).h(0).t(0).cx(0, 1).t(0);
        let out = run(&c);
        // First T isolated by the H; the latter two merge.
        assert_eq!(out.gate_counts().single_qubit, 3);
    }

    #[test]
    fn mixed_families_on_one_wire() {
        let mut c = Circuit::new(2);
        c.t(0).s(0).x(0).x(0).tdg(0).cx(0, 1).u1(0.25, 0);
        let out = run(&c);
        assert!(circuit_unitary(&out).equal_up_to_global_phase(&circuit_unitary(&c), 1e-9));
        assert!(out.gate_counts().single_qubit <= 3);
    }

    #[test]
    fn barriers_and_measures_flush() {
        let mut c = Circuit::new(1);
        c.t(0).barrier().tdg(0);
        let out = run(&c);
        assert_eq!(out.gate_counts().single_qubit, 2);
    }
}
