//! Gate cancellation passes: adjacent self-inverse pair removal and
//! commutation-aware CNOT cancellation.
//!
//! These are the "gate-cancellation procedure based on gate commutation
//! relationships" that Qiskit's level ≥ 2 pipelines run (Section II-B of the
//! paper) — the baseline optimizations RPO is measured on top of.

use crate::{Pass, TranspileError};
use qc_circuit::{Circuit, Dag, Gate, Instruction};

/// Cancels adjacent `cx` pairs with identical control/target, and adjacent
/// self-inverse single-qubit pairs (h·h, x·x, …). Also commutes `u1`/`z`
/// rotations past CNOT controls when doing so exposes a cancellation.
#[derive(Default)]
pub struct CxCancellation;

fn is_self_inverse_1q(g: &Gate) -> bool {
    matches!(g, Gate::X | Gate::Y | Gate::Z | Gate::H)
}

impl Pass for CxCancellation {
    fn name(&self) -> &'static str {
        "CxCancellation"
    }

    fn run(&self, circuit: &mut Circuit) -> Result<(), TranspileError> {
        // Iterate until no more cancellations fire.
        for _ in 0..64 {
            if !cancel_once(circuit) {
                return Ok(());
            }
        }
        Ok(())
    }
}

impl crate::manager::DagPass for CxCancellation {
    fn name(&self) -> &'static str {
        "CxCancellation"
    }

    fn interest(&self) -> crate::manager::PassInterest {
        // Cancellations pair cx gates (connected along the cx's own wires)
        // or adjacent self-inverse 1q gates; a change on a wire carrying
        // neither cannot create one.
        use qc_circuit::gate_class::{CX, SELF_INVERSE};
        crate::manager::PassInterest::gate_classes(CX | SELF_INVERSE)
    }

    fn run_on_dag(
        &self,
        dag: &mut qc_circuit::Dag,
        props: &mut crate::manager::PropertySet,
    ) -> Result<qc_circuit::ChangeReport, TranspileError> {
        let mut total = qc_circuit::ChangeReport::none(dag.num_qubits());
        // Same sweep-to-fixpoint as the circuit-level pass, on the shared
        // IR: each sweep plans over the cached per-node commutation
        // classes and batches its removals into one edit.
        for _ in 0..64 {
            let removed = {
                let classes = crate::manager::CommutationAnalysis::get(props, dag);
                plan_cancellations(dag, classes)
            };
            let mut edit = qc_circuit::DagEdit::new();
            for (id, r) in removed.iter().enumerate() {
                if *r {
                    edit.remove(id);
                }
            }
            if edit.is_empty() {
                break;
            }
            total.merge(&dag.apply(edit));
        }
        Ok(total)
    }
}

/// One cancellation sweep over a DAG: `removed[id]` marks node ids to
/// delete. `classes` gives each node id's commutation family (1-qubit
/// Z-diagonal gates are looked through on CNOT control wires). Shared by
/// the circuit-level and DAG-native drivers.
fn plan_cancellations(dag: &Dag, classes: &[crate::manager::CommClass]) -> Vec<bool> {
    use crate::manager::CommClass;
    let mut removed = vec![false; dag.capacity()];

    // Helper: the next non-removed successor of `node` along wire `q` that
    // is not a Z-diagonal 1q gate when `skip_diagonal` (used to look through
    // phase gates sitting on a CNOT control).
    let next_on_wire = |node: usize, q: usize, removed: &[bool], skip_diagonal: bool| {
        let mut cur = dag.wire_succ(node, q);
        while let Some(s) = cur {
            if removed[s] || (skip_diagonal && classes[s] == CommClass::ZDiagonal) {
                cur = dag.wire_succ(s, q);
                continue;
            }
            return Some(s);
        }
        None
    };

    for (i, inst) in dag.iter() {
        if removed[i] {
            continue;
        }
        match &inst.gate {
            Gate::Cx => {
                let (c, t) = (inst.qubits[0], inst.qubits[1]);
                // Successor through the control wire may skip Z-diagonal
                // gates (they commute with the control); the target wire
                // must connect directly.
                let sc = next_on_wire(i, c, &removed, true);
                let st = next_on_wire(i, t, &removed, false);
                if let (Some(sc), Some(st)) = (sc, st) {
                    if sc == st
                        && matches!(dag.inst(sc).gate, Gate::Cx)
                        && dag.inst(sc).qubits == vec![c, t]
                    {
                        removed[i] = true;
                        removed[sc] = true;
                    }
                }
            }
            g if inst.qubits.len() == 1 && is_self_inverse_1q(g) => {
                let q = inst.qubits[0];
                if let Some(s) = next_on_wire(i, q, &removed, false) {
                    if dag.inst(s).gate == *g && dag.inst(s).qubits.len() == 1 {
                        removed[i] = true;
                        removed[s] = true;
                    }
                }
            }
            _ => {}
        }
    }
    removed
}

/// One cancellation sweep; returns whether anything changed.
fn cancel_once(circuit: &mut Circuit) -> bool {
    let dag = Dag::from_circuit(circuit);
    let classes: Vec<crate::manager::CommClass> = dag
        .iter()
        .map(|(_, inst)| {
            if inst.qubits.len() == 1 {
                crate::manager::comm_class(&inst.gate)
            } else {
                crate::manager::CommClass::Other
            }
        })
        .collect();
    let removed = plan_cancellations(&dag, &classes);
    if !removed.iter().any(|&r| r) {
        return false;
    }
    // A freshly built DAG numbers ids densely in program order, so ids
    // index the instruction list directly.
    let out: Vec<Instruction> = circuit
        .instructions()
        .iter()
        .enumerate()
        .filter(|(i, _)| !removed[*i])
        .map(|(_, inst)| inst.clone())
        .collect();
    circuit.set_instructions(out);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_circuit::circuit_unitary;

    fn cancelled(c: &Circuit) -> Circuit {
        let mut out = c.clone();
        CxCancellation.run(&mut out).unwrap();
        out
    }

    #[test]
    fn adjacent_cx_pairs_cancel() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        assert_eq!(cancelled(&c).gate_counts().cx, 0);
    }

    #[test]
    fn opposite_direction_cx_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        assert_eq!(cancelled(&c).gate_counts().cx, 2);
    }

    #[test]
    fn cx_pair_with_phase_on_control_cancels() {
        // u1 on the control commutes with CNOT; the pair still cancels.
        let mut c = Circuit::new(2);
        c.cx(0, 1).t(0).cx(0, 1);
        let out = cancelled(&c);
        assert_eq!(out.gate_counts().cx, 0);
        assert_eq!(out.gate_counts().single_qubit, 1);
        assert!(circuit_unitary(&out).equal_up_to_global_phase(&circuit_unitary(&c), 1e-9));
    }

    #[test]
    fn cx_pair_with_gate_on_target_does_not_cancel() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).t(1).cx(0, 1);
        assert_eq!(cancelled(&c).gate_counts().cx, 2);
    }

    #[test]
    fn self_inverse_1q_pairs_cancel() {
        let mut c = Circuit::new(1);
        c.h(0).h(0).x(0).x(0).z(0);
        let out = cancelled(&c);
        assert_eq!(out.gate_counts().total, 1);
    }

    #[test]
    fn chains_collapse_fully() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1).cx(0, 1).cx(0, 1);
        assert_eq!(cancelled(&c).gate_counts().cx, 0);
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1).cx(0, 1);
        assert_eq!(cancelled(&c).gate_counts().cx, 1);
    }

    #[test]
    fn preserves_semantics() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).s(0).cx(0, 1).cx(1, 2).x(2).x(2).h(0);
        let out = cancelled(&c);
        assert!(circuit_unitary(&out).equal_up_to_global_phase(&circuit_unitary(&c), 1e-9));
        assert!(out.gate_counts().total < c.gate_counts().total);
    }
}
