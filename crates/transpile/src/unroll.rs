//! The `Unroller` pass: decompose gates into a target basis.
//!
//! IBM devices of the paper's era support the basis `{u1, u2, u3, id, cx}`;
//! the RPO pipeline additionally runs an unroll into the *extended* basis
//! that keeps `swap` and `swapz` intact so the QPO pass can reason about
//! them (Fig. 8, line 6).

use crate::{Pass, TranspileError};
use qc_circuit::{Circuit, Gate, Instruction};
use qc_synth::{
    controlled_u_circuit, fredkin_circuit, matrix_to_u3_gate, mcx_no_ancilla, mcz_circuit,
    synthesize_two_qubit, toffoli_circuit,
};
use std::collections::HashSet;
use std::f64::consts::{FRAC_PI_2, PI};

/// The device basis used throughout the paper: `u1, u2, u3, id, cx`.
pub fn device_basis() -> HashSet<&'static str> {
    ["u1", "u2", "u3", "id", "cx"].into_iter().collect()
}

/// The device basis extended with `swap` and `swapz`, used right before the
/// QPO pass.
pub fn extended_basis() -> HashSet<&'static str> {
    ["u1", "u2", "u3", "id", "cx", "swap", "swapz"]
        .into_iter()
        .collect()
}

/// Decomposes every gate outside `basis` into basis gates.
pub struct Unroller {
    basis: HashSet<&'static str>,
}

impl Unroller {
    /// Creates an unroller targeting the given basis (gate names).
    pub fn new(basis: HashSet<&'static str>) -> Self {
        Unroller { basis }
    }

    /// Unroller for the standard device basis.
    pub fn to_device_basis() -> Self {
        Unroller::new(device_basis())
    }

    /// Unroller for the swap-preserving extended basis.
    pub fn to_extended_basis() -> Self {
        Unroller::new(extended_basis())
    }

    /// Decomposes one instruction into basis gates, or `None` when it is
    /// already in the basis (or non-unitary). The shared core of both the
    /// circuit-level pass and the DAG-native pass.
    pub fn expand(&self, inst: &Instruction) -> Result<Option<Vec<Instruction>>, TranspileError> {
        // Non-unitary instructions and directives always pass through.
        if matches!(
            inst.gate,
            Gate::Reset | Gate::Measure | Gate::Barrier(_) | Gate::Annot(_, _)
        ) || self.basis.contains(inst.gate.name())
        {
            return Ok(None);
        }
        let mut out = Vec::new();
        self.rewrite(inst, &mut out)?;
        Ok(Some(out))
    }

    fn rewrite(
        &self,
        inst: &Instruction,
        out: &mut Vec<Instruction>,
    ) -> Result<bool, TranspileError> {
        let q = &inst.qubits;
        // Non-unitary instructions and directives always pass through.
        if matches!(
            inst.gate,
            Gate::Reset | Gate::Measure | Gate::Barrier(_) | Gate::Annot(_, _)
        ) {
            out.push(inst.clone());
            return Ok(false);
        }
        if self.basis.contains(inst.gate.name()) {
            out.push(inst.clone());
            return Ok(false);
        }
        let mut push = |gate: Gate, qubits: Vec<usize>| out.push(Instruction::new(gate, qubits));
        match &inst.gate {
            Gate::I => push(Gate::U1(0.0), vec![q[0]]),
            Gate::X => push(Gate::U3(PI, 0.0, PI), vec![q[0]]),
            Gate::Y => push(Gate::U3(PI, FRAC_PI_2, FRAC_PI_2), vec![q[0]]),
            Gate::Z => push(Gate::U1(PI), vec![q[0]]),
            Gate::H => push(Gate::U2(0.0, PI), vec![q[0]]),
            Gate::S => push(Gate::U1(FRAC_PI_2), vec![q[0]]),
            Gate::Sdg => push(Gate::U1(-FRAC_PI_2), vec![q[0]]),
            Gate::T => push(Gate::U1(PI / 4.0), vec![q[0]]),
            Gate::Tdg => push(Gate::U1(-PI / 4.0), vec![q[0]]),
            Gate::Rx(t) => push(Gate::U3(*t, -FRAC_PI_2, FRAC_PI_2), vec![q[0]]),
            Gate::Ry(t) => push(Gate::U3(*t, 0.0, 0.0), vec![q[0]]),
            Gate::Rz(t) => push(Gate::U1(*t), vec![q[0]]),
            Gate::U1(l) => push(Gate::U3(0.0, 0.0, *l), vec![q[0]]),
            Gate::U2(p, l) => push(Gate::U3(FRAC_PI_2, *p, *l), vec![q[0]]),
            Gate::U3(..) => return Err(TranspileError::unsupported_gate("basis must include u3")),
            Gate::Cx => push(Gate::Cx, vec![q[0], q[1]]),
            Gate::Cz => {
                push(Gate::H, vec![q[1]]);
                push(Gate::Cx, vec![q[0], q[1]]);
                push(Gate::H, vec![q[1]]);
            }
            Gate::Cp(l) => {
                push(Gate::U1(l / 2.0), vec![q[0]]);
                push(Gate::Cx, vec![q[0], q[1]]);
                push(Gate::U1(-l / 2.0), vec![q[1]]);
                push(Gate::Cx, vec![q[0], q[1]]);
                push(Gate::U1(l / 2.0), vec![q[1]]);
            }
            Gate::Swap => {
                push(Gate::Cx, vec![q[0], q[1]]);
                push(Gate::Cx, vec![q[1], q[0]]);
                push(Gate::Cx, vec![q[0], q[1]]);
            }
            Gate::SwapZ => {
                // Definition Eq. 3: cx(other→qz) then cx(qz→other).
                push(Gate::Cx, vec![q[1], q[0]]);
                push(Gate::Cx, vec![q[0], q[1]]);
            }
            Gate::Ccx => compose_onto(out, &toffoli_circuit(), q),
            Gate::Cswap => compose_onto(out, &fredkin_circuit(), q),
            Gate::Mcx(n) => compose_onto(out, &mcx_no_ancilla(*n), q),
            Gate::Mcz(n) => compose_onto(out, &mcz_circuit(*n), q),
            Gate::Cu(u) => compose_onto(out, &controlled_u_circuit(u), q),
            Gate::Unitary(m) => match inst.qubits.len() {
                1 => push(matrix_to_u3_gate(m), vec![q[0]]),
                2 => compose_onto(out, &synthesize_two_qubit(m), q),
                n => {
                    return Err(TranspileError::unsupported_gate(format!(
                        "{n}-qubit unitary block"
                    )))
                }
            },
            Gate::Reset | Gate::Measure | Gate::Barrier(_) | Gate::Annot(_, _) => unreachable!(),
        }
        Ok(true)
    }
}

/// Appends `sub`'s instructions onto `out`, mapping sub-circuit qubit `i` to
/// `mapping[i]`.
fn compose_onto(out: &mut Vec<Instruction>, sub: &Circuit, mapping: &[usize]) {
    for inst in sub.instructions() {
        let qs: Vec<usize> = inst.qubits.iter().map(|&i| mapping[i]).collect();
        out.push(Instruction::new(inst.gate.clone(), qs));
    }
}

impl Pass for Unroller {
    fn name(&self) -> &'static str {
        "Unroller"
    }

    fn run(&self, circuit: &mut Circuit) -> Result<(), TranspileError> {
        // Iterate to a fixpoint: decompositions may introduce gates that
        // themselves need unrolling (e.g. ccx → h/t/cx).
        for _ in 0..16 {
            let mut out = Vec::with_capacity(circuit.len());
            let mut changed = false;
            for inst in circuit.instructions() {
                changed |= self.rewrite(inst, &mut out)?;
            }
            circuit.set_instructions(out);
            if !changed {
                return Ok(());
            }
        }
        Err(TranspileError::Internal(
            "unroller failed to reach a fixpoint".into(),
        ))
    }
}

impl crate::manager::DagPass for Unroller {
    fn name(&self) -> &'static str {
        "Unroller"
    }

    fn interest(&self) -> crate::manager::PassInterest {
        use qc_circuit::gate_class::{NON_DEVICE, NON_EXTENDED};
        // The unroller rewrites exactly the unitary gates outside its
        // basis; the class census tracks the two stock bases. A custom
        // basis over-approximates to every wire.
        if self.basis == device_basis() {
            crate::manager::PassInterest::gate_classes(NON_DEVICE)
        } else if self.basis == extended_basis() {
            crate::manager::PassInterest::gate_classes(NON_EXTENDED)
        } else {
            crate::manager::PassInterest::all_wires()
        }
    }

    fn run_on_dag(
        &self,
        dag: &mut qc_circuit::Dag,
        _props: &mut crate::manager::PropertySet,
    ) -> Result<qc_circuit::ChangeReport, TranspileError> {
        let mut total = qc_circuit::ChangeReport::none(dag.num_qubits());
        // Same fixpoint sweep as the circuit-level pass, batched per sweep.
        for _ in 0..16 {
            let mut edit = qc_circuit::DagEdit::new();
            for (i, inst) in dag.iter() {
                if let Some(expansion) = self.expand(inst)? {
                    edit.replace(i, expansion);
                }
            }
            if edit.is_empty() {
                return Ok(total);
            }
            total.merge(&dag.apply(edit));
        }
        Err(TranspileError::Internal(
            "unroller failed to reach a fixpoint".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_circuit::circuit_unitary;
    use qc_math::Matrix;

    fn unrolled(c: &Circuit) -> Circuit {
        let mut out = c.clone();
        Unroller::to_device_basis().run(&mut out).unwrap();
        out
    }

    fn assert_equiv_and_basis(c: &Circuit) {
        let out = unrolled(c);
        for inst in out.instructions() {
            assert!(
                device_basis().contains(inst.gate.name())
                    || !inst.gate.is_unitary_gate()
                    || inst.gate.is_directive(),
                "gate {} not in basis",
                inst.gate
            );
        }
        assert!(
            circuit_unitary(&out).equal_up_to_global_phase(&circuit_unitary(c), 1e-7),
            "unroll changed semantics"
        );
    }

    #[test]
    fn simple_gates_unroll() {
        let mut c = Circuit::new(2);
        c.x(0)
            .y(0)
            .z(1)
            .h(1)
            .s(0)
            .tdg(1)
            .rx(0.3, 0)
            .ry(0.5, 1)
            .rz(0.7, 0);
        assert_equiv_and_basis(&c);
    }

    #[test]
    fn two_qubit_gates_unroll() {
        let mut c = Circuit::new(2);
        c.cz(0, 1).cp(0.9, 1, 0).swap(0, 1).swapz(1, 0);
        assert_equiv_and_basis(&c);
    }

    #[test]
    fn toffoli_and_fredkin_unroll() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).cswap(2, 0, 1);
        assert_equiv_and_basis(&c);
    }

    #[test]
    fn mcx_and_mcz_unroll() {
        let mut c = Circuit::new(4);
        c.mcx(&[0, 1, 2], 3).mcz(&[3, 1], 0);
        assert_equiv_and_basis(&c);
    }

    #[test]
    fn controlled_u_and_unitary_unroll() {
        let mut c = Circuit::new(2);
        c.cu(Gate::T.matrix().unwrap(), 1, 0);
        c.push(Gate::Unitary(Gate::Cz.matrix().unwrap()), &[0, 1]);
        assert_equiv_and_basis(&c);
    }

    #[test]
    fn extended_basis_keeps_swaps() {
        let mut c = Circuit::new(2);
        c.swap(0, 1).swapz(0, 1);
        let mut out = c.clone();
        Unroller::to_extended_basis().run(&mut out).unwrap();
        assert_eq!(out.count_name("swap"), 1);
        assert_eq!(out.count_name("swapz"), 1);
    }

    #[test]
    fn non_unitary_instructions_survive() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0).reset(1).barrier().annot_zero(1);
        let out = unrolled(&c);
        assert_eq!(out.count_name("measure"), 1);
        assert_eq!(out.count_name("reset"), 1);
        assert_eq!(out.count_name("barrier"), 1);
        assert_eq!(out.count_name("annot"), 1);
    }

    #[test]
    fn swap_becomes_three_cx() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let out = unrolled(&c);
        assert_eq!(out.gate_counts().cx, 3);
    }

    #[test]
    fn swapz_becomes_two_cx() {
        let mut c = Circuit::new(2);
        c.swapz(0, 1);
        let out = unrolled(&c);
        assert_eq!(out.gate_counts().cx, 2);
        // Semantics preserved exactly (it is defined as those two CNOTs).
        assert!(circuit_unitary(&out).equal_up_to_global_phase(&circuit_unitary(&c), 1e-9));
    }

    #[test]
    fn rejects_oversized_unitary_blocks() {
        let mut c = Circuit::new(3);
        c.push(Gate::Unitary(Matrix::identity(8)), &[0, 1, 2]);
        let err = Unroller::to_device_basis().run(&mut c).unwrap_err();
        assert!(matches!(err, TranspileError::InvalidInput(_)));
    }
}
