//! The DAG-native pass manager: shared-IR passes, cached analyses, and the
//! change-driven, interest-filtered fixed-point driver.
//!
//! Three pieces replace the old "every pass clones a [`Circuit`], rebuilds
//! a [`Dag`], flattens back" pipeline:
//!
//! * [`DagPass`] — a pass mutates the shared [`Dag`] in place (via
//!   [`qc_circuit::DagEdit`] batches) and returns a [`ChangeReport`]
//!   saying how many nodes it rewrote and on which wires. A pass may also
//!   declare a [`PassInterest`]: the gate classes it rewrites, so the
//!   driver can prove a re-run pointless without executing it.
//! * [`PropertySet`] — a keyed store of cached analyses. Each analysis
//!   snapshots the DAG's per-wire generation stamps when computed and
//!   revalidates against them, so a pass that only touched wires `{2, 3}`
//!   invalidates only entries depending on those wires. [`BlocksAnalysis`]
//!   (the `Collect2qBlocks`/`BlockTracker` product) and
//!   [`CommutationAnalysis`] live here; the per-wire state automata cache
//!   lives with the analyses themselves in `rpo-core`.
//! * [`FixedPointLoop`] — the paper's Fig. 8 line 9 loop, driven by change
//!   reports instead of unconditional re-execution. A pass is *skipped*
//!   when its dirty wire set is empty (its last run made no rewrites and
//!   nothing touched the DAG since), and — new with interest filtering —
//!   when every dirty wire fails the pass's [`PassInterest`] (everything
//!   that changed lives on wires that carry no gate class the pass acts
//!   on, so the pass provably has nothing to do). The loop exits as soon
//!   as an iteration executes nothing. The classic gate-count termination
//!   rule is kept as well, so the loop visits exactly the same rewriting
//!   pass executions as the pre-refactor driver — output is gate-for-gate
//!   identical, just without the wasted clean re-runs.
//!
//! Per-pass execution statistics ([`PassStats`]: runs, change-tracking
//! skips, interest skips, rewrites, relinked nodes, wall time) are
//! collected by the driver and surfaced through
//! [`crate::preset::transpile_instrumented`] for the CI timing artifact.

use crate::guard::{GuardedRun, PassGuard};
use crate::TranspileError;
use qc_circuit::{Block, ChangeReport, Dag, Gate, WireSet};
use std::any::Any;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A pass's declared rewrite interest: which wires could possibly give it
/// work, expressed over the DAG's per-wire gate-class census
/// ([`qc_circuit::gate_class`], [`Dag::wire_class_mask`]).
///
/// # Contract
///
/// The declaration must be **sound**: whenever the pass would rewrite
/// anything, at least one wire it rewrites (or whose content enabled the
/// rewrite) must satisfy the predicate. Over-approximating (declaring more
/// classes, or [`PassInterest::all_wires`]) costs only wasted re-runs;
/// under-approximating changes pipeline output. Passes whose rewrites
/// depend on state that *flows along* wires (QBO/QPO: a gate far upstream
/// changes the reachable state at the rewrite site, and the swap family
/// carries state across wires) must over-approximate with
/// [`PassInterest::all_wires`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PassInterest {
    /// `None` = every wire is interesting regardless of content;
    /// `Some(mask)` = a wire is interesting iff its class census
    /// intersects `mask`.
    classes: Option<u16>,
}

impl PassInterest {
    /// Interest in every wire — the sound default for passes whose
    /// rewrites cannot be localized by gate content.
    pub fn all_wires() -> Self {
        PassInterest { classes: None }
    }

    /// Interest in wires whose node census intersects `mask`
    /// ([`qc_circuit::gate_class`] bits).
    pub fn gate_classes(mask: u16) -> Self {
        PassInterest {
            classes: Some(mask),
        }
    }

    /// Whether wire `q` of `dag` currently satisfies the predicate.
    pub fn wire_interesting(&self, dag: &Dag, q: usize) -> bool {
        match self.classes {
            None => true,
            Some(mask) => dag.wire_class_mask(q) & mask != 0,
        }
    }

    /// Whether any wire of `dirty` satisfies the predicate.
    pub fn any_interesting(&self, dag: &Dag, dirty: &WireSet) -> bool {
        match self.classes {
            None => !dirty.is_empty(),
            Some(mask) => dirty.iter().any(|q| dag.wire_class_mask(q) & mask != 0),
        }
    }
}

/// A transformation of the shared DAG IR — the unit the DAG-native
/// pipelines are composed from.
pub trait DagPass {
    /// Short pass name for logging, statistics and diagnostics.
    fn name(&self) -> &'static str;

    /// The wires this pass could possibly rewrite, by gate-class content.
    /// Defaults to every wire (always sound); override with a
    /// [`PassInterest::gate_classes`] mask when the pass only acts on
    /// specific gate classes (see the [`PassInterest`] contract).
    fn interest(&self) -> PassInterest {
        PassInterest::all_wires()
    }

    /// Mutates the DAG in place, reporting what changed.
    ///
    /// # Errors
    ///
    /// Returns a [`TranspileError`] when the DAG cannot be processed
    /// (unsupported gate, resource mismatch).
    fn run_on_dag(
        &self,
        dag: &mut Dag,
        props: &mut PropertySet,
    ) -> Result<ChangeReport, TranspileError>;

    /// Whether the pass preserves the circuit's unitary up to global
    /// phase. The guard's post-pass unitary spot check only applies to
    /// passes answering `true`; passes performing *relaxed* rewrites
    /// (QBO/QPO change the unitary while preserving the observable
    /// behavior from the prepared initial state) must override to `false`.
    fn preserves_unitary(&self) -> bool {
        true
    }
}

/// A keyed store of cached analyses shared by the passes of one pipeline.
///
/// Values are stored under a string key and downcast on access; each value
/// type carries its own generation snapshot and decides validity against
/// the current DAG (see [`BlocksAnalysis`] for the pattern).
#[derive(Default)]
pub struct PropertySet {
    entries: HashMap<&'static str, Box<dyn Any>>,
}

impl PropertySet {
    /// An empty property set.
    pub fn new() -> Self {
        PropertySet::default()
    }

    /// The cached value under `key`, if present and of type `T`.
    pub fn get<T: 'static>(&self, key: &'static str) -> Option<&T> {
        self.entries.get(key).and_then(|v| v.downcast_ref())
    }

    /// Stores `value` under `key`, replacing any previous entry.
    pub fn insert<T: 'static>(&mut self, key: &'static str, value: T) {
        self.entries.insert(key, Box::new(value));
    }

    /// Mutable access to the entry under `key`, inserting `T::default()`
    /// first if absent or of the wrong type.
    pub fn entry_mut<T: 'static + Default>(&mut self, key: &'static str) -> &mut T {
        let slot = self
            .entries
            .entry(key)
            .or_insert_with(|| Box::new(T::default()));
        if !slot.is::<T>() {
            *slot = Box::new(T::default());
        }
        slot.downcast_mut().expect("just ensured the type")
    }

    /// Drops every cached entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Snapshot of the DAG's mutation state (global generation + per-wire
/// stamps), the validity key every cached analysis stores alongside its
/// value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GenSnapshot {
    gen: u64,
    gens: Vec<u64>,
}

impl GenSnapshot {
    /// Captures the current generation and per-wire stamps.
    pub fn of(dag: &Dag) -> Self {
        GenSnapshot {
            gen: dag.generation(),
            gens: (0..dag.num_qubits()).map(|q| dag.wire_gen(q)).collect(),
        }
    }

    /// Whether nothing mutated the DAG since the snapshot.
    pub fn fresh(&self, dag: &Dag) -> bool {
        self.gen == dag.generation() && self.gens.len() == dag.num_qubits()
    }

    /// Whether none of `wires` changed since the snapshot (other wires may
    /// have).
    pub fn fresh_for(&self, dag: &Dag, wires: impl IntoIterator<Item = usize>) -> bool {
        self.gens.len() == dag.num_qubits()
            && wires
                .into_iter()
                .all(|q| self.gens.get(q).copied() == Some(dag.wire_gen(q)))
    }
}

/// Cached block collection ([`Dag::collect_blocks`]), keyed by arity.
/// `ConsolidateBlocks` and QPO's block rewrite both consume arity-2 blocks;
/// with the cache the second consumer (and any re-run in the fixed-point
/// loop on a clean DAG) pays nothing.
#[derive(Default)]
pub struct BlocksAnalysis {
    cached: HashMap<usize, (GenSnapshot, Vec<Block>)>,
}

/// [`PropertySet`] key of [`BlocksAnalysis`].
pub const BLOCKS_KEY: &str = "blocks";

impl BlocksAnalysis {
    /// The blocks of `dag` at `max_arity`, recomputed only when the DAG
    /// changed since the cached collection.
    pub fn get<'p>(props: &'p mut PropertySet, dag: &Dag, max_arity: usize) -> &'p [Block] {
        let this: &mut BlocksAnalysis = props.entry_mut(BLOCKS_KEY);
        let entry = this
            .cached
            .entry(max_arity)
            .or_insert_with(|| (GenSnapshot::default(), Vec::new()));
        if !entry.0.fresh(dag) {
            *entry = (GenSnapshot::of(dag), dag.collect_blocks(max_arity));
        }
        &this.cached[&max_arity].1
    }
}

/// Commutation family of a gate relative to a CNOT on the same wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommClass {
    /// Diagonal in Z: commutes with a CNOT control.
    ZDiagonal,
    /// An X-axis rotation: commutes with a CNOT target.
    XRotation,
    /// Neither.
    Other,
}

/// The commutation family of a single-qubit gate.
pub fn comm_class(g: &Gate) -> CommClass {
    match g {
        Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::Rz(_) | Gate::U1(_) => {
            CommClass::ZDiagonal
        }
        Gate::X | Gate::Rx(_) => CommClass::XRotation,
        _ => CommClass::Other,
    }
}

/// Cached per-node commutation classes, indexed by node id (slab index).
/// `CxCancellation` consults this when deciding whether a gate sitting on a
/// CNOT control can be commuted through.
#[derive(Default)]
pub struct CommutationAnalysis {
    snapshot: GenSnapshot,
    classes: Vec<CommClass>,
}

/// [`PropertySet`] key of [`CommutationAnalysis`].
pub const COMMUTATION_KEY: &str = "commutation";

impl CommutationAnalysis {
    /// Per-node-id commutation classes for `dag`, recomputed only when the
    /// DAG changed since the cached classification. Dead slab slots hold
    /// [`CommClass::Other`].
    pub fn get<'p>(props: &'p mut PropertySet, dag: &Dag) -> &'p [CommClass] {
        let this: &mut CommutationAnalysis = props.entry_mut(COMMUTATION_KEY);
        if !this.snapshot.fresh(dag) || this.classes.len() != dag.capacity() {
            this.snapshot = GenSnapshot::of(dag);
            this.classes = vec![CommClass::Other; dag.capacity()];
            for (id, inst) in dag.iter() {
                if inst.qubits.len() == 1 {
                    this.classes[id] = comm_class(&inst.gate);
                }
            }
        }
        &this.classes
    }
}

/// Per-pass execution statistics collected by the drivers.
#[derive(Clone, Debug)]
pub struct PassStats {
    /// Pass name.
    pub name: &'static str,
    /// Times the pass actually executed.
    pub runs: usize,
    /// Times the change-tracking driver skipped the pass as clean (empty
    /// dirty set).
    pub skipped: usize,
    /// Times the driver skipped the pass because no dirty wire satisfied
    /// its [`PassInterest`].
    pub skipped_interest: usize,
    /// Total node rewrites across all runs.
    pub rewrites: usize,
    /// Total nodes relinked by the pass's splices (the O(edit) work
    /// measure; see [`ChangeReport::relink_nodes`]).
    pub relink_nodes: usize,
    /// Wall time spent inside the pass.
    pub wall: Duration,
    /// Times the guard skipped the pass because an earlier failure
    /// quarantined it (see [`crate::guard::PassGuard`]).
    pub quarantined: usize,
    /// Times the guard skipped the pass because the transpile budget's
    /// deadline had passed.
    pub budget_skips: usize,
    /// Times the guard skipped the pass because the caller pre-disabled
    /// it ([`crate::guard::PassSet`] on the options — serve-level retry
    /// and circuit breakers).
    pub predisabled: usize,
}

impl PassStats {
    /// Fresh zeroed statistics for a pass name.
    pub fn new_named(name: &'static str) -> Self {
        PassStats::new(name)
    }

    fn new(name: &'static str) -> Self {
        PassStats {
            name,
            runs: 0,
            skipped: 0,
            skipped_interest: 0,
            rewrites: 0,
            relink_nodes: 0,
            wall: Duration::ZERO,
            quarantined: 0,
            budget_skips: 0,
            predisabled: 0,
        }
    }
}

/// Runs a pass once, timing it into `stats` and merging its report.
pub fn run_timed(
    pass: &dyn DagPass,
    dag: &mut Dag,
    props: &mut PropertySet,
    stats: &mut PassStats,
) -> Result<ChangeReport, TranspileError> {
    let t0 = Instant::now();
    let report = pass.run_on_dag(dag, props)?;
    stats.wall += t0.elapsed();
    stats.runs += 1;
    stats.rewrites += report.rewrites;
    stats.relink_nodes += report.relink_nodes;
    Ok(report)
}

/// Runs a straight-line pipeline stage under `name`, appending its
/// statistics — the shared helper of the instrumented pipelines' prefix
/// stages (the fixed-point loop keeps its own per-pass stats).
pub fn run_named(
    name: &'static str,
    pass: &dyn DagPass,
    dag: &mut Dag,
    props: &mut PropertySet,
    stats: &mut Vec<PassStats>,
) -> Result<(), TranspileError> {
    let mut s = PassStats::new_named(name);
    run_timed(pass, dag, props, &mut s)?;
    stats.push(s);
    Ok(())
}

/// The change-driven fixed-point driver for a fixed pass sequence (the
/// paper's Fig. 8 line 9 loop).
///
/// Every pass starts dirty. Each iteration runs the dirty passes in order;
/// a pass's report (when it rewrote anything) re-dirties *every* pass —
/// including itself — because any rewrite may expose new opportunities
/// anywhere downstream. A pass is skipped when its dirty set is empty (its
/// previous run made no rewrites and nothing has touched the DAG since),
/// or when no dirty wire satisfies its [`PassInterest`] (everything that
/// changed lives on wires carrying no gate class the pass rewrites, so —
/// passes being deterministic — running it would change nothing). The
/// second filter can be disabled with
/// [`FixedPointLoop::without_interest_filtering`], which the equivalence
/// tests use to assert filtering never changes output.
///
/// Termination mirrors the pre-refactor driver exactly: stop after
/// `max_iters` iterations, when an iteration performs no rewrites, or when
/// an iteration fails to improve the CNOT count or total gate count.
pub struct FixedPointLoop {
    passes: Vec<Box<dyn DagPass>>,
    interests: Vec<PassInterest>,
    interest_enabled: bool,
    dirty: Vec<WireSet>,
    /// Per-pass statistics, index-aligned with the pass sequence.
    pub stats: Vec<PassStats>,
    /// Passes executed per iteration, appended as the loop runs (the
    /// change-report plumbing's observable: a clean second iteration
    /// records `0`).
    pub executed_per_iteration: Vec<usize>,
}

impl FixedPointLoop {
    /// A driver over the given pass sequence, all passes initially dirty,
    /// interest filtering enabled.
    pub fn new(passes: Vec<Box<dyn DagPass>>, num_qubits: usize) -> Self {
        let dirty = passes.iter().map(|_| WireSet::full(num_qubits)).collect();
        let stats = passes.iter().map(|p| PassStats::new(p.name())).collect();
        let interests = passes.iter().map(|p| p.interest()).collect();
        FixedPointLoop {
            passes,
            interests,
            interest_enabled: true,
            dirty,
            stats,
            executed_per_iteration: Vec::new(),
        }
    }

    /// Disables [`PassInterest`] filtering: dirty passes always run, as in
    /// the pre-interest driver. The interest-equivalence property tests
    /// compare this mode against the default.
    pub fn without_interest_filtering(mut self) -> Self {
        self.interest_enabled = false;
        self
    }

    /// Runs the loop to its fixed point (or `max_iters`).
    ///
    /// # Errors
    ///
    /// Propagates the first pass failure.
    pub fn run(
        &mut self,
        dag: &mut Dag,
        props: &mut PropertySet,
        max_iters: usize,
    ) -> Result<(), TranspileError> {
        for _ in 0..max_iters {
            let before = dag.gate_counts();
            let mut executed = 0usize;
            let mut any_rewrites = false;
            for i in 0..self.passes.len() {
                if self.dirty[i].is_empty() {
                    self.stats[i].skipped += 1;
                    continue;
                }
                if self.interest_enabled && !self.interests[i].any_interesting(dag, &self.dirty[i])
                {
                    // Every dirty wire lacks the pass's gate classes: the
                    // pass provably has nothing to rewrite. Treat it as
                    // clean (a later relevant change re-dirties it).
                    self.stats[i].skipped_interest += 1;
                    self.dirty[i].clear();
                    continue;
                }
                self.dirty[i].clear();
                let report = run_timed(self.passes[i].as_ref(), dag, props, &mut self.stats[i])?;
                executed += 1;
                if report.changed() {
                    any_rewrites = true;
                    for d in self.dirty.iter_mut() {
                        d.union(&report.touched);
                    }
                }
            }
            self.executed_per_iteration.push(executed);
            if executed == 0 || !any_rewrites {
                break;
            }
            let after = dag.gate_counts();
            if after.cx >= before.cx && after.total >= before.total {
                break;
            }
        }
        Ok(())
    }

    /// Runs the loop to its fixed point under a [`PassGuard`]: every pass
    /// executes with panic containment, checkpoint/rollback and
    /// quarantine; the loop stops early (keeping the best circuit so far)
    /// when the budget's deadline passes, and caps its iterations at the
    /// budget's `max_fixpoint_iters`.
    ///
    /// With an unlimited budget and no failing passes this visits exactly
    /// the same pass executions as [`FixedPointLoop::run`].
    ///
    /// # Errors
    ///
    /// Only hard budget violations ([`qc_circuit::RpoError::BudgetExceeded`])
    /// — pass failures are contained and recorded on the guard's
    /// [`crate::guard::DegradationReport`].
    pub fn run_guarded(
        &mut self,
        dag: &mut Dag,
        props: &mut PropertySet,
        max_iters: usize,
        guard: &mut PassGuard,
    ) -> Result<(), TranspileError> {
        let capped = guard
            .budget()
            .max_fixpoint_iters
            .map_or(max_iters, |m| m.min(max_iters));
        for _ in 0..capped {
            if guard.deadline_exceeded() {
                guard.note_deadline("fixed-point loop");
                return Ok(());
            }
            let before = dag.gate_counts();
            let mut executed = 0usize;
            let mut any_rewrites = false;
            for i in 0..self.passes.len() {
                if self.dirty[i].is_empty() {
                    self.stats[i].skipped += 1;
                    continue;
                }
                if self.interest_enabled && !self.interests[i].any_interesting(dag, &self.dirty[i])
                {
                    self.stats[i].skipped_interest += 1;
                    self.dirty[i].clear();
                    continue;
                }
                self.dirty[i].clear();
                let name = self.passes[i].name();
                match guard.run_pass(
                    name,
                    self.passes[i].as_ref(),
                    dag,
                    props,
                    &mut self.stats[i],
                    true,
                )? {
                    GuardedRun::Ran(report) => {
                        executed += 1;
                        if report.changed() {
                            any_rewrites = true;
                            for d in self.dirty.iter_mut() {
                                d.union(&report.touched);
                            }
                        }
                    }
                    GuardedRun::Skipped => {}
                }
            }
            self.executed_per_iteration.push(executed);
            if executed == 0 || !any_rewrites {
                return Ok(());
            }
            let after = dag.gate_counts();
            if after.cx >= before.cx && after.total >= before.total {
                return Ok(());
            }
        }
        if capped < max_iters {
            // The budget's iteration ceiling stopped the loop before it
            // reached the fixed point the uncapped loop would have.
            guard.note_max_iterations("fixed-point loop");
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_circuit::{gate_class, Circuit, DagEdit, Instruction};

    /// A pass that removes one `x` gate per run, if any remains.
    struct DropOneX;
    impl DagPass for DropOneX {
        fn name(&self) -> &'static str {
            "DropOneX"
        }
        fn interest(&self) -> PassInterest {
            PassInterest::gate_classes(gate_class::ONE_Q_X)
        }
        fn run_on_dag(
            &self,
            dag: &mut Dag,
            _props: &mut PropertySet,
        ) -> Result<ChangeReport, TranspileError> {
            let target = dag
                .iter()
                .find(|(_, i)| matches!(i.gate, Gate::X))
                .map(|(id, _)| id);
            let mut edit = DagEdit::new();
            if let Some(t) = target {
                edit.remove(t);
            }
            Ok(dag.apply(edit))
        }
    }

    /// A pass that never changes anything.
    struct Inert;
    impl DagPass for Inert {
        fn name(&self) -> &'static str {
            "Inert"
        }
        fn run_on_dag(
            &self,
            dag: &mut Dag,
            _props: &mut PropertySet,
        ) -> Result<ChangeReport, TranspileError> {
            Ok(ChangeReport::none(dag.num_qubits()))
        }
    }

    #[test]
    fn clean_second_iteration_runs_no_passes() {
        // An already-optimized stream: every pass reports no rewrites in
        // iteration 1, so iteration 2 executes nothing.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let mut fp = FixedPointLoop::new(vec![Box::new(Inert), Box::new(Inert)], 2);
        fp.run(&mut dag, &mut props, 10).unwrap();
        assert_eq!(fp.executed_per_iteration, vec![2]);
        assert_eq!(fp.stats[0].runs, 1);
        assert_eq!(fp.stats[1].runs, 1);
    }

    #[test]
    fn rewrites_redirty_all_passes_until_fixed_point() {
        let mut c = Circuit::new(1);
        c.x(0).x(0);
        let mut dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let mut fp = FixedPointLoop::new(vec![Box::new(DropOneX), Box::new(Inert)], 1);
        fp.run(&mut dag, &mut props, 10).unwrap();
        // Iterations: [drop x, inert], [drop x, inert], [both skipped].
        assert!(dag.is_empty());
        assert!(fp.stats[0].runs >= 2);
        // Once the last x is gone the wire loses its ONE_Q_X census entry,
        // so the final iteration proves the re-dirtied DropOneX pointless
        // and executes nothing at all.
        assert_eq!(*fp.executed_per_iteration.last().unwrap(), 0);
        assert!(fp.stats[0].skipped_interest >= 1);
    }

    #[test]
    fn inert_pass_skipped_once_clean() {
        // After iteration 1 the Inert pass is clean; iteration 2 only runs
        // it again because DropOneX's rewrite re-dirtied it.
        let mut c = Circuit::new(1);
        c.x(0);
        let mut dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let mut fp = FixedPointLoop::new(vec![Box::new(Inert), Box::new(DropOneX)], 1);
        fp.run(&mut dag, &mut props, 10).unwrap();
        // Iter 1: inert runs (dirty init), drop rewrites → both re-dirty.
        // Iter 2: inert runs, drop runs... but once the x is gone the wire
        // loses the ONE_Q_X class and interest filtering skips DropOneX.
        assert!(dag.is_empty());
        assert!(fp.stats[1].runs + fp.stats[1].skipped_interest >= 2);
    }

    #[test]
    fn interest_filter_skips_pass_without_relevant_wires() {
        // The stream carries no x gates at all: DropOneX is interest-
        // filtered from the very first iteration (its dirty set is full
        // but no wire carries ONE_Q_X content).
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1);
        let mut dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let mut fp = FixedPointLoop::new(vec![Box::new(DropOneX)], 2);
        fp.run(&mut dag, &mut props, 10).unwrap();
        assert_eq!(fp.stats[0].runs, 0);
        assert_eq!(fp.stats[0].skipped_interest, 1);
        assert_eq!(dag.len(), 3);
    }

    #[test]
    fn interest_filter_can_be_disabled() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1);
        let mut dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let mut fp = FixedPointLoop::new(vec![Box::new(DropOneX)], 2).without_interest_filtering();
        fp.run(&mut dag, &mut props, 10).unwrap();
        assert_eq!(fp.stats[0].runs, 1);
        assert_eq!(fp.stats[0].skipped_interest, 0);
    }

    #[test]
    fn interest_filter_fires_once_content_appears() {
        // x gates present: the pass runs (and keeps running) until the
        // wire's ONE_Q_X census drains, then interest filters it.
        let mut c = Circuit::new(1);
        c.x(0).x(0);
        let mut dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let mut fp = FixedPointLoop::new(vec![Box::new(DropOneX)], 1);
        fp.run(&mut dag, &mut props, 10).unwrap();
        assert!(dag.is_empty());
        assert!(fp.stats[0].runs >= 2);
        assert!(fp.stats[0].skipped_interest >= 1);
    }

    #[test]
    fn blocks_analysis_survives_unrelated_wire_edits() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).t(1).cx(0, 1).h(3);
        let mut dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let blocks = BlocksAnalysis::get(&mut props, &dag, 2).to_vec();
        assert_eq!(blocks.len(), 1);
        // Editing wire 3 does not invalidate... the snapshot is whole-DAG,
        // so it recomputes — but the result is identical.
        let mut edit = DagEdit::new();
        edit.replace(3, vec![Instruction::new(Gate::X, vec![3])]);
        dag.apply(edit);
        let again = BlocksAnalysis::get(&mut props, &dag, 2).to_vec();
        assert_eq!(blocks, again);
    }

    #[test]
    fn commutation_analysis_classifies_nodes() {
        let mut c = Circuit::new(2);
        c.t(0).x(1).cx(0, 1).h(0);
        let dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let classes = CommutationAnalysis::get(&mut props, &dag);
        assert_eq!(classes[0], CommClass::ZDiagonal);
        assert_eq!(classes[1], CommClass::XRotation);
        assert_eq!(classes[2], CommClass::Other);
        assert_eq!(classes[3], CommClass::Other);
    }
}
