//! The DAG-native pass manager: shared-IR passes, cached analyses, and the
//! change-driven fixed-point driver.
//!
//! Three pieces replace the old "every pass clones a [`Circuit`], rebuilds
//! a [`Dag`], flattens back" pipeline:
//!
//! * [`DagPass`] — a pass mutates the shared [`Dag`] in place (via
//!   [`qc_circuit::DagEdit`] batches) and returns a [`ChangeReport`]
//!   saying how many nodes it rewrote and on which wires.
//! * [`PropertySet`] — a keyed store of cached analyses. Each analysis
//!   snapshots the DAG's per-wire generation stamps when computed and
//!   revalidates against them, so a pass that only touched wires `{2, 3}`
//!   invalidates only entries depending on those wires. [`BlocksAnalysis`]
//!   (the `Collect2qBlocks`/`BlockTracker` product) and
//!   [`CommutationAnalysis`] live here; the per-wire state automata cache
//!   lives with the analyses themselves in `rpo-core`.
//! * [`FixedPointLoop`] — the paper's Fig. 8 line 9 loop, driven by change
//!   reports instead of unconditional re-execution: a pass whose dirty
//!   wire set is empty is *skipped* (its last run made no rewrites and
//!   nothing touched the DAG since, so re-running it would provably be a
//!   no-op), and the loop exits as soon as an iteration executes nothing.
//!   The classic gate-count termination rule is kept as well, so the loop
//!   visits exactly the same rewriting pass executions as the
//!   pre-refactor driver — output is gate-for-gate identical, just
//!   without the wasted clean re-runs.
//!
//! Per-pass execution statistics ([`PassStats`]: runs, skips, rewrites,
//! wall time) are collected by the driver and surfaced through
//! [`crate::preset::transpile_instrumented`] for the CI timing artifact.

use crate::TranspileError;
use qc_circuit::{Block, ChangeReport, Dag, Gate, WireSet};
use std::any::Any;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A transformation of the shared DAG IR — the unit the DAG-native
/// pipelines are composed from.
pub trait DagPass {
    /// Short pass name for logging, statistics and diagnostics.
    fn name(&self) -> &'static str;

    /// Mutates the DAG in place, reporting what changed.
    ///
    /// # Errors
    ///
    /// Returns a [`TranspileError`] when the DAG cannot be processed
    /// (unsupported gate, resource mismatch).
    fn run_on_dag(
        &self,
        dag: &mut Dag,
        props: &mut PropertySet,
    ) -> Result<ChangeReport, TranspileError>;
}

/// A keyed store of cached analyses shared by the passes of one pipeline.
///
/// Values are stored under a string key and downcast on access; each value
/// type carries its own generation snapshot and decides validity against
/// the current DAG (see [`BlocksAnalysis`] for the pattern).
#[derive(Default)]
pub struct PropertySet {
    entries: HashMap<&'static str, Box<dyn Any>>,
}

impl PropertySet {
    /// An empty property set.
    pub fn new() -> Self {
        PropertySet::default()
    }

    /// The cached value under `key`, if present and of type `T`.
    pub fn get<T: 'static>(&self, key: &'static str) -> Option<&T> {
        self.entries.get(key).and_then(|v| v.downcast_ref())
    }

    /// Stores `value` under `key`, replacing any previous entry.
    pub fn insert<T: 'static>(&mut self, key: &'static str, value: T) {
        self.entries.insert(key, Box::new(value));
    }

    /// Mutable access to the entry under `key`, inserting `T::default()`
    /// first if absent or of the wrong type.
    pub fn entry_mut<T: 'static + Default>(&mut self, key: &'static str) -> &mut T {
        let slot = self
            .entries
            .entry(key)
            .or_insert_with(|| Box::new(T::default()));
        if !slot.is::<T>() {
            *slot = Box::new(T::default());
        }
        slot.downcast_mut().expect("just ensured the type")
    }

    /// Drops every cached entry.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// Snapshot of the DAG's per-wire generation stamps, the validity key every
/// cached analysis stores alongside its value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GenSnapshot {
    gens: Vec<u64>,
}

impl GenSnapshot {
    /// Captures the current per-wire generations.
    pub fn of(dag: &Dag) -> Self {
        GenSnapshot {
            gens: (0..dag.num_qubits()).map(|q| dag.wire_gen(q)).collect(),
        }
    }

    /// Whether no wire changed since the snapshot.
    pub fn fresh(&self, dag: &Dag) -> bool {
        self.gens.len() == dag.num_qubits()
            && (0..dag.num_qubits()).all(|q| self.gens[q] == dag.wire_gen(q))
    }

    /// Whether none of `wires` changed since the snapshot.
    pub fn fresh_for(&self, dag: &Dag, wires: impl IntoIterator<Item = usize>) -> bool {
        self.gens.len() == dag.num_qubits()
            && wires
                .into_iter()
                .all(|q| self.gens.get(q).copied() == Some(dag.wire_gen(q)))
    }
}

/// Cached block collection ([`Dag::collect_blocks`]), keyed by arity.
/// `ConsolidateBlocks` and QPO's block rewrite both consume arity-2 blocks;
/// with the cache the second consumer (and any re-run in the fixed-point
/// loop on a clean DAG) pays nothing.
#[derive(Default)]
pub struct BlocksAnalysis {
    cached: HashMap<usize, (GenSnapshot, Vec<Block>)>,
}

/// [`PropertySet`] key of [`BlocksAnalysis`].
pub const BLOCKS_KEY: &str = "blocks";

impl BlocksAnalysis {
    /// The blocks of `dag` at `max_arity`, recomputed only when a wire
    /// changed since the cached collection.
    pub fn get<'p>(props: &'p mut PropertySet, dag: &Dag, max_arity: usize) -> &'p [Block] {
        let this: &mut BlocksAnalysis = props.entry_mut(BLOCKS_KEY);
        let entry = this
            .cached
            .entry(max_arity)
            .or_insert_with(|| (GenSnapshot::default(), Vec::new()));
        if !entry.0.fresh(dag) {
            *entry = (GenSnapshot::of(dag), dag.collect_blocks(max_arity));
        }
        &this.cached[&max_arity].1
    }
}

/// Commutation family of a gate relative to a CNOT on the same wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommClass {
    /// Diagonal in Z: commutes with a CNOT control.
    ZDiagonal,
    /// An X-axis rotation: commutes with a CNOT target.
    XRotation,
    /// Neither.
    Other,
}

/// The commutation family of a single-qubit gate.
pub fn comm_class(g: &Gate) -> CommClass {
    match g {
        Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::Rz(_) | Gate::U1(_) => {
            CommClass::ZDiagonal
        }
        Gate::X | Gate::Rx(_) => CommClass::XRotation,
        _ => CommClass::Other,
    }
}

/// Cached per-node commutation classes, aligned with the DAG's node order.
/// `CxCancellation` consults this when deciding whether a gate sitting on a
/// CNOT control can be commuted through.
#[derive(Default)]
pub struct CommutationAnalysis {
    snapshot: GenSnapshot,
    classes: Vec<CommClass>,
}

/// [`PropertySet`] key of [`CommutationAnalysis`].
pub const COMMUTATION_KEY: &str = "commutation";

impl CommutationAnalysis {
    /// Per-node commutation classes for `dag`, recomputed only when the
    /// DAG changed since the cached classification.
    pub fn get<'p>(props: &'p mut PropertySet, dag: &Dag) -> &'p [CommClass] {
        let this: &mut CommutationAnalysis = props.entry_mut(COMMUTATION_KEY);
        if !this.snapshot.fresh(dag) || this.classes.len() != dag.nodes().len() {
            this.snapshot = GenSnapshot::of(dag);
            this.classes = dag
                .nodes()
                .iter()
                .map(|inst| {
                    if inst.qubits.len() == 1 {
                        comm_class(&inst.gate)
                    } else {
                        CommClass::Other
                    }
                })
                .collect();
        }
        &this.classes
    }
}

/// Per-pass execution statistics collected by the drivers.
#[derive(Clone, Debug)]
pub struct PassStats {
    /// Pass name.
    pub name: &'static str,
    /// Times the pass actually executed.
    pub runs: usize,
    /// Times the change-tracking driver skipped the pass as clean.
    pub skipped: usize,
    /// Total node rewrites across all runs.
    pub rewrites: usize,
    /// Wall time spent inside the pass.
    pub wall: Duration,
}

impl PassStats {
    /// Fresh zeroed statistics for a pass name.
    pub fn new_named(name: &'static str) -> Self {
        PassStats::new(name)
    }

    fn new(name: &'static str) -> Self {
        PassStats {
            name,
            runs: 0,
            skipped: 0,
            rewrites: 0,
            wall: Duration::ZERO,
        }
    }
}

/// Runs a pass once, timing it into `stats` and merging its report.
pub fn run_timed(
    pass: &dyn DagPass,
    dag: &mut Dag,
    props: &mut PropertySet,
    stats: &mut PassStats,
) -> Result<ChangeReport, TranspileError> {
    let t0 = Instant::now();
    let report = pass.run_on_dag(dag, props)?;
    stats.wall += t0.elapsed();
    stats.runs += 1;
    stats.rewrites += report.rewrites;
    Ok(report)
}

/// Runs a straight-line pipeline stage under `name`, appending its
/// statistics — the shared helper of the instrumented pipelines' prefix
/// stages (the fixed-point loop keeps its own per-pass stats).
pub fn run_named(
    name: &'static str,
    pass: &dyn DagPass,
    dag: &mut Dag,
    props: &mut PropertySet,
    stats: &mut Vec<PassStats>,
) -> Result<(), TranspileError> {
    let mut s = PassStats::new_named(name);
    run_timed(pass, dag, props, &mut s)?;
    stats.push(s);
    Ok(())
}

/// The change-driven fixed-point driver for a fixed pass sequence (the
/// paper's Fig. 8 line 9 loop).
///
/// Every pass starts dirty. Each iteration runs the dirty passes in order;
/// a pass's report (when it rewrote anything) re-dirties *every* pass —
/// including itself — because any rewrite may expose new opportunities
/// anywhere downstream. A pass with an empty dirty set is skipped: its
/// previous run made no rewrites and nothing has touched the DAG since, so
/// (passes being deterministic) re-running it would change nothing.
///
/// Termination mirrors the pre-refactor driver exactly: stop after
/// `max_iters` iterations, when an iteration performs no rewrites, or when
/// an iteration fails to improve the CNOT count or total gate count.
pub struct FixedPointLoop {
    passes: Vec<Box<dyn DagPass>>,
    dirty: Vec<WireSet>,
    /// Per-pass statistics, index-aligned with the pass sequence.
    pub stats: Vec<PassStats>,
    /// Passes executed per iteration, appended as the loop runs (the
    /// change-report plumbing's observable: a clean second iteration
    /// records `0`).
    pub executed_per_iteration: Vec<usize>,
}

impl FixedPointLoop {
    /// A driver over the given pass sequence, all passes initially dirty.
    pub fn new(passes: Vec<Box<dyn DagPass>>, num_qubits: usize) -> Self {
        let dirty = passes.iter().map(|_| WireSet::full(num_qubits)).collect();
        let stats = passes.iter().map(|p| PassStats::new(p.name())).collect();
        FixedPointLoop {
            passes,
            dirty,
            stats,
            executed_per_iteration: Vec::new(),
        }
    }

    /// Runs the loop to its fixed point (or `max_iters`).
    ///
    /// # Errors
    ///
    /// Propagates the first pass failure.
    pub fn run(
        &mut self,
        dag: &mut Dag,
        props: &mut PropertySet,
        max_iters: usize,
    ) -> Result<(), TranspileError> {
        for _ in 0..max_iters {
            let before = dag.gate_counts();
            let mut executed = 0usize;
            let mut any_rewrites = false;
            for i in 0..self.passes.len() {
                if self.dirty[i].is_empty() {
                    self.stats[i].skipped += 1;
                    continue;
                }
                self.dirty[i].clear();
                let report = run_timed(self.passes[i].as_ref(), dag, props, &mut self.stats[i])?;
                executed += 1;
                if report.changed() {
                    any_rewrites = true;
                    for d in self.dirty.iter_mut() {
                        d.union(&report.touched);
                    }
                }
            }
            self.executed_per_iteration.push(executed);
            if executed == 0 || !any_rewrites {
                break;
            }
            let after = dag.gate_counts();
            if after.cx >= before.cx && after.total >= before.total {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_circuit::{Circuit, DagEdit, Instruction};

    /// A pass that removes one `x` gate per run, if any remains.
    struct DropOneX;
    impl DagPass for DropOneX {
        fn name(&self) -> &'static str {
            "DropOneX"
        }
        fn run_on_dag(
            &self,
            dag: &mut Dag,
            _props: &mut PropertySet,
        ) -> Result<ChangeReport, TranspileError> {
            let target = dag.nodes().iter().position(|i| matches!(i.gate, Gate::X));
            let mut edit = DagEdit::new();
            if let Some(t) = target {
                edit.remove(t);
            }
            Ok(dag.apply(edit))
        }
    }

    /// A pass that never changes anything.
    struct Inert;
    impl DagPass for Inert {
        fn name(&self) -> &'static str {
            "Inert"
        }
        fn run_on_dag(
            &self,
            dag: &mut Dag,
            _props: &mut PropertySet,
        ) -> Result<ChangeReport, TranspileError> {
            Ok(ChangeReport::none(dag.num_qubits()))
        }
    }

    #[test]
    fn clean_second_iteration_runs_no_passes() {
        // An already-optimized stream: every pass reports no rewrites in
        // iteration 1, so iteration 2 executes nothing.
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let mut fp = FixedPointLoop::new(vec![Box::new(Inert), Box::new(Inert)], 2);
        fp.run(&mut dag, &mut props, 10).unwrap();
        assert_eq!(fp.executed_per_iteration, vec![2]);
        assert_eq!(fp.stats[0].runs, 1);
        assert_eq!(fp.stats[1].runs, 1);
    }

    #[test]
    fn rewrites_redirty_all_passes_until_fixed_point() {
        let mut c = Circuit::new(1);
        c.x(0).x(0);
        let mut dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let mut fp = FixedPointLoop::new(vec![Box::new(DropOneX), Box::new(Inert)], 1);
        fp.run(&mut dag, &mut props, 10).unwrap();
        // Iterations: [drop x, inert], [drop x, inert], [no-op run], done.
        assert!(dag.nodes().is_empty());
        assert!(fp.stats[0].runs >= 2);
        // The final iteration executed passes but rewrote nothing.
        assert!(*fp.executed_per_iteration.last().unwrap() > 0);
    }

    #[test]
    fn inert_pass_skipped_once_clean() {
        // After iteration 1 the Inert pass is clean; iteration 2 only runs
        // it again because DropOneX's rewrite re-dirtied it.
        let mut c = Circuit::new(1);
        c.x(0);
        let mut dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let mut fp = FixedPointLoop::new(vec![Box::new(Inert), Box::new(DropOneX)], 1);
        fp.run(&mut dag, &mut props, 10).unwrap();
        // Iter 1: inert runs (dirty init), drop rewrites → both re-dirty.
        // Iter 2: inert runs, drop runs, nothing rewritten → break.
        assert_eq!(fp.stats[0].runs + fp.stats[0].skipped, fp.stats[1].runs);
        assert!(dag.nodes().is_empty());
    }

    #[test]
    fn blocks_analysis_survives_unrelated_wire_edits() {
        let mut c = Circuit::new(4);
        c.cx(0, 1).t(1).cx(0, 1).h(3);
        let mut dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let blocks = BlocksAnalysis::get(&mut props, &dag, 2).to_vec();
        assert_eq!(blocks.len(), 1);
        // Editing wire 3 does not invalidate... the snapshot is whole-DAG,
        // so it recomputes — but the result is identical.
        let mut edit = DagEdit::new();
        edit.replace(3, vec![Instruction::new(Gate::X, vec![3])]);
        dag.apply(edit);
        let again = BlocksAnalysis::get(&mut props, &dag, 2).to_vec();
        assert_eq!(blocks, again);
    }

    #[test]
    fn commutation_analysis_classifies_nodes() {
        let mut c = Circuit::new(2);
        c.t(0).x(1).cx(0, 1).h(0);
        let dag = Dag::from_circuit(&c);
        let mut props = PropertySet::new();
        let classes = CommutationAnalysis::get(&mut props, &dag);
        assert_eq!(classes[0], CommClass::ZDiagonal);
        assert_eq!(classes[1], CommClass::XRotation);
        assert_eq!(classes[2], CommClass::Other);
        assert_eq!(classes[3], CommClass::Other);
    }
}
