//! The pre-refactor, circuit-roundtrip transpile pipeline, retained
//! verbatim as the oracle for the DAG-native pipeline's property tests.
//!
//! Every stage here clones the [`Circuit`], rebuilds a `Dag` internally,
//! and flattens back — the conversion churn the DAG-native
//! [`crate::transpile`] eliminates. The property tests assert the two
//! produce gate-for-gate identical output on random circuit families; do
//! not "optimize" this module, its value is being the old behavior.

use crate::cancellation::CxCancellation;
use crate::preset::{
    stage_fixpoint_loop, stage_layout, stage_optimize_1q, stage_route, stage_unroll_device,
    TranspileOptions, Transpiled,
};
use crate::{Pass, TranspileError};
use qc_backends::Backend;
use qc_circuit::Circuit;

/// The pre-refactor [`crate::transpile`]: one pass pipeline over cloned
/// circuits with the unconditional fixed-point loop.
///
/// # Errors
///
/// Same failure modes as [`crate::transpile`].
pub fn transpile_reference(
    circuit: &Circuit,
    backend: &Backend,
    opts: &TranspileOptions,
) -> Result<Transpiled, TranspileError> {
    let mut c = circuit.clone();
    stage_unroll_device(&mut c)?;
    let layout = stage_layout(&mut c, backend, opts.level)?;
    let wire_map = stage_route(&mut c, backend, opts.seed, opts.routing_trials)?;
    stage_unroll_device(&mut c)?; // decompose routing SWAPs
    match opts.level {
        0 => {}
        1 => {
            stage_optimize_1q(&mut c)?;
            CxCancellation.run(&mut c)?;
        }
        2 => {
            stage_optimize_1q(&mut c)?;
            stage_fixpoint_loop(&mut c, false)?;
        }
        _ => {
            stage_optimize_1q(&mut c)?;
            stage_fixpoint_loop(&mut c, true)?;
        }
    }
    let final_map = layout.iter().map(|&w| wire_map[w]).collect();
    Ok(Transpiled {
        circuit: c,
        final_map,
        degradation: crate::guard::DegradationReport::default(),
    })
}
