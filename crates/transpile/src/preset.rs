//! Preset pass pipelines: optimization levels 0–3.
//!
//! Mirrors the Qiskit 0.18 preset pass managers the paper describes in
//! Section II-B: level 0 only maps; level 1 adds light gate collapsing;
//! level 2 adds cancellation loops; level 3 adds two-qubit block
//! re-synthesis. The individual stages are public so the RPO pipeline
//! (crate `rpo-core`) can interleave its QBO/QPO passes per Fig. 8.
//!
//! [`transpile`] is DAG-native: the input circuit converts to the shared
//! [`Dag`] IR exactly once, every pass mutates it in place, the level-2/3
//! loop is the change-driven [`FixedPointLoop`], and the result converts
//! back exactly once. The circuit-based `stage_*` helpers remain for the
//! retained pre-refactor path ([`crate::reference::transpile_reference`]),
//! which the property tests use as the gate-for-gate oracle.

use crate::cancellation::CxCancellation;
use crate::commutation::CommutativeCancellation;
use crate::consolidate::ConsolidateBlocks;
use crate::guard::{
    catch_stage, input_issue, run_stage, DegradationReport, PassGuard, PassSet, TranspileBudget,
};
use crate::layout::{apply_layout, apply_layout_dag, dense_layout, trivial_layout};
use crate::manager::{DagPass, FixedPointLoop, PassStats, PropertySet};
use crate::optimize_1q::Optimize1qGates;
use crate::routing::{route, route_dag, route_dag_budgeted};
use crate::unroll::Unroller;
use crate::{Pass, TranspileError};
use qc_backends::Backend;
use qc_circuit::{Circuit, Dag};

/// Options controlling transpilation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TranspileOptions {
    /// Optimization level, 0–3 (higher = more effort), as in the paper.
    pub level: u8,
    /// Seed for every stochastic component (routing).
    pub seed: u64,
    /// Number of seeded routing trials; the cheapest is kept.
    pub routing_trials: usize,
    /// Whether the fixed-point loop filters dirty passes by their declared
    /// [`crate::manager::PassInterest`] (on by default). Filtering never
    /// changes output — the off switch exists for the equivalence property
    /// tests and for A/B timing.
    pub interest_filtering: bool,
    /// Resource ceilings for the run (unlimited by default). Deadline and
    /// iteration ceilings degrade gracefully (optional passes are skipped,
    /// the best circuit so far is returned); gate/qubit ceilings are hard
    /// [`crate::RpoError::BudgetExceeded`] errors.
    pub budget: TranspileBudget,
    /// Optional passes to skip for the whole run (empty by default). The
    /// serve layer's retry path recompiles with a previously-quarantined
    /// pass in this set, and its circuit breakers pre-disable repeat
    /// offenders fleet-wide. Mandatory executions of a listed label still
    /// run — see [`crate::guard::PassGuard::with_predisabled`].
    pub disabled_passes: PassSet,
}

impl TranspileOptions {
    /// Options for the given optimization level with default seed and
    /// trial count.
    pub fn level(level: u8) -> Self {
        TranspileOptions {
            level,
            seed: 0,
            routing_trials: 5,
            interest_filtering: true,
            budget: TranspileBudget::unlimited(),
            disabled_passes: PassSet::empty(),
        }
    }

    /// Sets the resource budget.
    pub fn with_budget(mut self, budget: TranspileBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Sets the pre-disabled optional passes.
    pub fn with_disabled_passes(mut self, set: PassSet) -> Self {
        self.disabled_passes = set;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the routing trial count.
    pub fn with_routing_trials(mut self, trials: usize) -> Self {
        self.routing_trials = trials;
        self
    }

    /// Disables [`crate::manager::PassInterest`] filtering in the
    /// fixed-point loop.
    pub fn without_interest_filtering(mut self) -> Self {
        self.interest_filtering = false;
        self
    }
}

/// A transpiled circuit plus the logical→physical qubit map needed to read
/// measurement outcomes.
#[derive(Clone, Debug)]
pub struct Transpiled {
    /// The hardware-ready circuit on backend-width wires.
    pub circuit: Circuit,
    /// `final_map[q]` = physical qubit where logical qubit `q` is measured
    /// (or ends up).
    pub final_map: Vec<usize>,
    /// What the guard contained during the run: quarantined passes and
    /// budget ceilings hit. [`DegradationReport::is_clean`] on a healthy
    /// run.
    pub degradation: DegradationReport,
}

/// Unrolls into the device basis `{u1, u2, u3, id, cx}`.
pub fn stage_unroll_device(c: &mut Circuit) -> Result<(), TranspileError> {
    Unroller::to_device_basis().run(c)
}

/// Unrolls into the extended basis that preserves `swap`/`swapz`.
pub fn stage_unroll_extended(c: &mut Circuit) -> Result<(), TranspileError> {
    Unroller::to_extended_basis().run(c)
}

/// Selects a layout (trivial below level 2, dense otherwise) and rewrites
/// the circuit onto physical wires. Returns the layout.
pub fn stage_layout(
    c: &mut Circuit,
    backend: &Backend,
    level: u8,
) -> Result<Vec<usize>, TranspileError> {
    let layout = if level >= 2 {
        dense_layout(c, backend)?
    } else {
        if c.num_qubits() > backend.num_qubits() {
            return Err(TranspileError::too_many_qubits(
                c.num_qubits(),
                backend.num_qubits(),
            ));
        }
        trivial_layout(c.num_qubits())
    };
    *c = apply_layout(c, &layout, backend.num_qubits())?;
    Ok(layout)
}

/// Routes the circuit, returning the end-of-circuit wire map.
pub fn stage_route(
    c: &mut Circuit,
    backend: &Backend,
    seed: u64,
    trials: usize,
) -> Result<Vec<usize>, TranspileError> {
    let routed = route(c, backend, seed, trials)?;
    *c = routed.circuit;
    Ok(routed.wire_map)
}

/// Runs `Optimize1qGates` once.
pub fn stage_optimize_1q(c: &mut Circuit) -> Result<(), TranspileError> {
    Optimize1qGates.run(c)
}

/// The level-2/3 fixed-point loop: cancellation + 1q merging (+ block
/// consolidation at level 3) until gate counts stop improving.
pub fn stage_fixpoint_loop(c: &mut Circuit, consolidate: bool) -> Result<(), TranspileError> {
    for _ in 0..10 {
        let before = c.gate_counts();
        CommutativeCancellation.run(c)?;
        CxCancellation.run(c)?;
        Optimize1qGates.run(c)?;
        if consolidate {
            ConsolidateBlocks.run(c)?;
            stage_unroll_device(c)?;
            Optimize1qGates.run(c)?;
            CxCancellation.run(c)?;
        }
        let after = c.gate_counts();
        if after.cx >= before.cx && after.total >= before.total {
            break;
        }
    }
    Ok(())
}

/// Transpiles a circuit for a backend at the requested optimization level.
///
/// # Errors
///
/// Fails when the circuit does not fit the backend or contains a gate with
/// no decomposition rule.
///
/// # Examples
///
/// ```
/// use qc_backends::Backend;
/// use qc_circuit::Circuit;
/// use qc_transpile::{transpile, TranspileOptions};
///
/// let mut bell = Circuit::new(2);
/// bell.h(0).cx(0, 1).measure_all();
/// let out = transpile(&bell, &Backend::melbourne(), &TranspileOptions::level(3)).unwrap();
/// assert!(out.circuit.gate_counts().cx >= 1);
/// ```
pub fn transpile(
    circuit: &Circuit,
    backend: &Backend,
    opts: &TranspileOptions,
) -> Result<Transpiled, TranspileError> {
    transpile_instrumented(circuit, backend, opts).map(|(t, _)| t)
}

/// The pass sequence of the level-2/3 fixed-point loop (`consolidate`
/// appends the level-3 tail), as boxed DAG passes for [`FixedPointLoop`].
pub fn fixpoint_passes(consolidate: bool) -> Vec<Box<dyn DagPass>> {
    let mut passes: Vec<Box<dyn DagPass>> = vec![
        Box::new(CommutativeCancellation),
        Box::new(CxCancellation),
        Box::new(Optimize1qGates),
    ];
    if consolidate {
        passes.push(Box::new(ConsolidateBlocks));
        passes.push(Box::new(Unroller::to_device_basis()));
        passes.push(Box::new(Optimize1qGates));
        passes.push(Box::new(CxCancellation));
    }
    passes
}

/// Layout selection on the shared DAG (trivial below level 2, dense
/// otherwise), rewriting the nodes onto physical wires. Returns the layout.
///
/// # Errors
///
/// Returns [`TranspileError::TooManyQubits`] when the circuit does not fit.
pub fn dag_stage_layout(
    dag: &mut Dag,
    backend: &Backend,
    level: u8,
) -> Result<Vec<usize>, TranspileError> {
    let layout = if level >= 2 {
        crate::layout::dense_layout_insts(
            dag.iter().map(|(_, inst)| inst),
            dag.num_qubits(),
            backend,
        )?
    } else {
        if dag.num_qubits() > backend.num_qubits() {
            return Err(TranspileError::too_many_qubits(
                dag.num_qubits(),
                backend.num_qubits(),
            ));
        }
        trivial_layout(dag.num_qubits())
    };
    apply_layout_dag(dag, &layout, backend.num_qubits())?;
    Ok(layout)
}

/// Routing on the shared DAG: inserts SWAPs, installs the routed stream,
/// and returns the end-of-circuit wire map.
///
/// # Errors
///
/// Same failure modes as [`crate::routing::route`].
pub fn dag_stage_route(
    dag: &mut Dag,
    backend: &Backend,
    seed: u64,
    trials: usize,
) -> Result<Vec<usize>, TranspileError> {
    let routed = route_dag(dag, backend, seed, trials)?;
    dag.replace_all(backend.num_qubits(), routed.circuit.into_instructions());
    Ok(routed.wire_map)
}

/// [`transpile`] with per-pass execution statistics: the prefix stages and
/// every fixed-point pass report name, runs, change-tracking skips,
/// rewrites and wall time (the CI timing-table artifact's data source).
///
/// # Errors
///
/// Same failure modes as [`transpile`].
pub fn transpile_instrumented(
    circuit: &Circuit,
    backend: &Backend,
    opts: &TranspileOptions,
) -> Result<(Transpiled, Vec<PassStats>), TranspileError> {
    let mut guard = PassGuard::new(opts.budget).with_predisabled(opts.disabled_passes);
    guard.check_qubits(circuit.num_qubits())?;
    validate_input(circuit)?;
    // The single circuit→dag conversion of the pipeline.
    let mut dag = Dag::from_circuit(circuit);
    guard.check_gates(&dag)?;
    let mut props = PropertySet::new();
    let mut stats: Vec<PassStats> = Vec::new();
    // Mandatory stages (unrolling, layout, routing) run even past the
    // deadline: without them there is no hardware-valid circuit at all.
    run_stage(
        &mut guard,
        "Unroller(device)",
        &Unroller::to_device_basis(),
        &mut dag,
        &mut props,
        &mut stats,
        false,
    )?;
    let layout = catch_stage("layout", || dag_stage_layout(&mut dag, backend, opts.level))?;
    let snapshot = guard.snapshot();
    let (wire_map, trials_run) = catch_stage("routing", || {
        dag_stage_route_budgeted(&mut dag, backend, opts.seed, opts.routing_trials, snapshot)
    })?;
    if trials_run < opts.routing_trials.max(1) {
        guard.note_deadline("routing trials");
    }
    guard.check_gates(&dag)?;
    // Decompose routing SWAPs.
    run_stage(
        &mut guard,
        "Unroller(device)",
        &Unroller::to_device_basis(),
        &mut dag,
        &mut props,
        &mut stats,
        false,
    )?;
    match opts.level {
        0 => {}
        1 => {
            run_stage(
                &mut guard,
                "Optimize1qGates",
                &Optimize1qGates,
                &mut dag,
                &mut props,
                &mut stats,
                true,
            )?;
            run_stage(
                &mut guard,
                "CxCancellation",
                &CxCancellation,
                &mut dag,
                &mut props,
                &mut stats,
                true,
            )?;
        }
        level => {
            run_stage(
                &mut guard,
                "Optimize1qGates",
                &Optimize1qGates,
                &mut dag,
                &mut props,
                &mut stats,
                true,
            )?;
            let mut fp = FixedPointLoop::new(fixpoint_passes(level >= 3), dag.num_qubits());
            if !opts.interest_filtering {
                fp = fp.without_interest_filtering();
            }
            fp.run_guarded(&mut dag, &mut props, 10, &mut guard)?;
            stats.extend(fp.stats);
        }
    }
    if guard.deadline_exceeded() {
        // Record the overrun even when no pass was individually skipped
        // (e.g. the last pass itself blew the deadline).
        guard.note_deadline("pipeline end");
    }
    let final_map = layout.iter().map(|&w| wire_map[w]).collect();
    // The single dag→circuit conversion of the pipeline.
    let c = dag.to_circuit();
    Ok((
        Transpiled {
            circuit: c,
            final_map,
            degradation: guard.into_report(),
        },
        stats,
    ))
}

/// Rejects structurally invalid input before any pass runs: non-finite
/// gate parameters and non-unitary embedded matrices become
/// [`crate::RpoError::InvalidInput`] instead of NaN-poisoned output.
///
/// # Errors
///
/// [`crate::RpoError::InvalidInput`] naming the offending gate.
pub fn validate_input(circuit: &Circuit) -> Result<(), TranspileError> {
    for inst in circuit.instructions() {
        if let Some(issue) = input_issue(&inst.gate) {
            return Err(TranspileError::InvalidInput(format!(
                "input circuit: {issue}"
            )));
        }
    }
    Ok(())
}

/// [`dag_stage_route`] under a deadline budget: later trials are skipped
/// once the deadline passes (trial 0 always runs). Returns the wire map
/// and the number of trials actually run.
///
/// # Errors
///
/// Same failure modes as [`crate::routing::route`].
pub fn dag_stage_route_budgeted(
    dag: &mut Dag,
    backend: &Backend,
    seed: u64,
    trials: usize,
    budget: crate::guard::BudgetSnapshot,
) -> Result<(Vec<usize>, usize), TranspileError> {
    let (routed, ran) = route_dag_budgeted(dag, backend, seed, trials, budget)?;
    dag.replace_all(backend.num_qubits(), routed.circuit.into_instructions());
    Ok((routed.wire_map, ran))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_sim::Statevector;

    fn bell() -> Circuit {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).measure_all();
        c
    }

    #[test]
    fn all_levels_produce_device_gates() {
        let backend = Backend::melbourne();
        for level in 0..=3 {
            let out = transpile(&bell(), &backend, &TranspileOptions::level(level)).unwrap();
            for inst in out.circuit.instructions() {
                assert!(
                    crate::unroll::device_basis().contains(inst.gate.name())
                        || !inst.gate.is_unitary_gate(),
                    "level {level} left gate {}",
                    inst.gate
                );
                if inst.qubits.len() == 2 && inst.gate.is_unitary_gate() {
                    assert!(backend.are_adjacent(inst.qubits[0], inst.qubits[1]));
                }
            }
        }
    }

    #[test]
    fn higher_levels_do_not_increase_cx() {
        let backend = Backend::melbourne();
        let mut c = Circuit::new(5);
        // An entangling mesh that needs routing.
        for i in 0..5 {
            c.h(i);
        }
        for i in 0..5 {
            for j in i + 1..5 {
                c.cx(i, j);
            }
        }
        let opts = |l| TranspileOptions::level(l).with_seed(3);
        let cx0 = transpile(&c, &backend, &opts(0))
            .unwrap()
            .circuit
            .gate_counts()
            .cx;
        let cx3 = transpile(&c, &backend, &opts(3))
            .unwrap()
            .circuit
            .gate_counts()
            .cx;
        assert!(cx3 <= cx0, "level 3 ({cx3}) worse than level 0 ({cx0})");
    }

    #[test]
    fn transpiled_bell_still_makes_bell_pairs() {
        let backend = Backend::melbourne();
        let out = transpile(&bell(), &backend, &TranspileOptions::level(3)).unwrap();
        let sv = Statevector::from_circuit(&out.circuit);
        // Probability mass must sit on the two states where the mapped
        // qubits agree.
        let q0 = out.final_map[0];
        let q1 = out.final_map[1];
        let probs = sv.probabilities();
        let mut agree = 0.0;
        for (idx, p) in probs.iter().enumerate() {
            let b0 = (idx >> q0) & 1;
            let b1 = (idx >> q1) & 1;
            if b0 == b1 {
                agree += p;
            }
        }
        assert!((agree - 1.0).abs() < 1e-9, "bell correlation lost: {agree}");
    }

    #[test]
    fn deterministic_given_seed() {
        let backend = Backend::melbourne();
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 3).cx(1, 2).cx(0, 2).measure_all();
        let o = TranspileOptions::level(3).with_seed(9);
        let a = transpile(&c, &backend, &o).unwrap();
        let b = transpile(&c, &backend, &o).unwrap();
        assert_eq!(a.circuit, b.circuit);
    }

    #[test]
    fn measure_only_circuit() {
        let backend = Backend::melbourne();
        let mut c = Circuit::new(1);
        c.measure(0);
        let out = transpile(&c, &backend, &TranspileOptions::level(3)).unwrap();
        assert_eq!(out.circuit.count_name("measure"), 1);
    }

    #[test]
    fn oversized_circuit_rejected() {
        let backend = Backend::linear(2);
        let c = Circuit::new(5);
        assert!(transpile(&c, &backend, &TranspileOptions::level(1)).is_err());
    }
}
