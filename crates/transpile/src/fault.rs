//! Deterministic fault injection for the guarded pipelines (the
//! `fault-inject` feature; never compiled into normal builds).
//!
//! A test arms one [`FaultPlan`] — *this pass label fails in this way* —
//! and runs a transpile. The [`crate::guard::PassGuard`] hooks
//! ([`fire_before`], [`fire_after`]) fire the fault at the chosen pass,
//! exactly once, on this thread only. The property tests sweep every
//! stage label × [`FaultKind`] × seed asserting that no panic escapes the
//! public API, the output still validates, and the degradation is
//! reported.

use qc_circuit::{Dag, DagEdit, Gate, Instruction};
use qc_math::{Matrix, C64};
use std::cell::RefCell;
use std::time::Duration;

/// How the armed pass fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic before the pass body runs (the DAG is untouched).
    PanicBefore,
    /// Panic after the pass body ran (mid-flight state must roll back).
    PanicAfter,
    /// Sleep this long before the pass body (deadline-budget exercise).
    Stall(Duration),
    /// Splice a non-unitary embedded matrix into the DAG after the pass —
    /// silent semantic corruption the validator must catch.
    BadUnitary,
}

/// One armed fault: `pass` is the stage label the guard runs the pass
/// under (e.g. `"QBO(early)"`, `"ConsolidateBlocks"`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The stage label to fail at.
    pub pass: String,
    /// The failure mode.
    pub kind: FaultKind,
}

thread_local! {
    static ARMED: RefCell<Option<FaultPlan>> = const { RefCell::new(None) };
}

/// Arms `plan` on this thread. The fault fires once at the next guarded
/// execution of the matching stage, then disarms itself.
pub fn arm(plan: FaultPlan) {
    ARMED.with(|a| *a.borrow_mut() = Some(plan));
}

/// Disarms any pending fault on this thread.
pub fn disarm() {
    ARMED.with(|a| *a.borrow_mut() = None);
}

/// Whether a fault is currently armed for `label`. The guard forces
/// validation on for such a pass, so release-build sampling cannot let an
/// injected corruption escape.
pub fn armed_for(label: &str) -> bool {
    ARMED.with(|a| a.borrow().as_ref().is_some_and(|p| p.pass == label))
}

fn take_if(label: &str, want: impl Fn(&FaultKind) -> bool) -> Option<FaultPlan> {
    ARMED.with(|a| {
        let mut slot = a.borrow_mut();
        if slot
            .as_ref()
            .is_some_and(|p| p.pass == label && want(&p.kind))
        {
            slot.take()
        } else {
            None
        }
    })
}

/// Guard hook: fires before the pass body. [`FaultKind::PanicBefore`]
/// panics; [`FaultKind::Stall`] sleeps.
pub fn fire_before(label: &str) {
    if let Some(plan) = take_if(label, |k| {
        matches!(k, FaultKind::PanicBefore | FaultKind::Stall(_))
    }) {
        match plan.kind {
            FaultKind::PanicBefore => panic!("injected fault: panic before '{label}'"),
            FaultKind::Stall(d) => std::thread::sleep(d),
            _ => unreachable!(),
        }
    }
}

/// Guard hook: fires after the pass body returned `Ok`.
/// [`FaultKind::PanicAfter`] panics (with the pass's edits applied — the
/// rollback path); [`FaultKind::BadUnitary`] splices a non-unitary node.
pub fn fire_after(label: &str, dag: &mut Dag) {
    if let Some(plan) = take_if(label, |k| {
        matches!(k, FaultKind::PanicAfter | FaultKind::BadUnitary)
    }) {
        match plan.kind {
            FaultKind::PanicAfter => panic!("injected fault: panic after '{label}'"),
            FaultKind::BadUnitary => corrupt(dag),
            _ => unreachable!(),
        }
    }
}

/// Serve-perimeter hook: fires *any* armed kind at a point with no DAG in
/// scope (the `qc-serve` stage labels `"serve:admission"`, `"serve:cache"`,
/// `"serve:compile"`, `"serve:response"`). [`FaultKind::Stall`] sleeps;
/// every other kind panics — at a serve point there is no DAG to corrupt,
/// so `BadUnitary` degenerates to a panic, which is the strictly harsher
/// failure anyway.
pub fn fire_point(label: &str) {
    if let Some(plan) = take_if(label, |_| true) {
        match plan.kind {
            FaultKind::Stall(d) => std::thread::sleep(d),
            _ => panic!("injected fault at '{label}'"),
        }
    }
}

/// Splices a deliberately non-unitary 2×2 embedded matrix after the last
/// node (or as the only node of an empty DAG).
fn corrupt(dag: &mut Dag) {
    if dag.num_qubits() == 0 {
        return;
    }
    let bad = Matrix::from_fn(2, 2, |_, _| C64::real(3.0));
    let last = dag.iter().last().map(|(id, inst)| (id, inst.clone()));
    match last {
        Some((id, inst)) => {
            let q = inst.qubits[0];
            let mut edit = DagEdit::new();
            edit.replace(
                id,
                vec![inst, Instruction::new(Gate::Unitary(bad), vec![q])],
            );
            dag.apply(edit);
        }
        None => {
            dag.replace_all(
                dag.num_qubits(),
                vec![Instruction::new(Gate::Unitary(bad), vec![0])],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faults_fire_once_and_disarm() {
        disarm();
        arm(FaultPlan {
            pass: "X".into(),
            kind: FaultKind::Stall(Duration::ZERO),
        });
        assert!(armed_for("X"));
        assert!(!armed_for("Y"));
        fire_before("Y"); // wrong label: stays armed
        assert!(armed_for("X"));
        fire_before("X"); // fires (zero stall) and disarms
        assert!(!armed_for("X"));
    }

    #[test]
    fn bad_unitary_corrupts_the_dag() {
        use qc_circuit::Circuit;
        disarm();
        let mut c = Circuit::new(1);
        c.h(0);
        let mut dag = Dag::from_circuit(&c);
        arm(FaultPlan {
            pass: "P".into(),
            kind: FaultKind::BadUnitary,
        });
        fire_after("P", &mut dag);
        assert_eq!(dag.len(), 2);
        assert!(dag
            .iter()
            .any(|(_, i)| matches!(&i.gate, Gate::Unitary(m) if !m.is_unitary(1e-6))));
    }
}
