//! OpenQASM 2.0 export.
//!
//! Lets circuits produced by this stack (in particular, transpiled output)
//! be loaded into Qiskit or any other OpenQASM consumer — the natural
//! cross-check against the paper's original artifact. Gates outside
//! `qelib1.inc` are lowered structurally (SWAPZ to its defining CNOT pair,
//! MCX/MCZ rejected with an error so callers unroll first); annotations
//! and barriers become comments/barriers.

use crate::circuit::Circuit;
use crate::gate::Gate;
use std::fmt::Write as _;

/// Errors raised during QASM export.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QasmError {
    /// The gate has no qelib1 representation; unroll the circuit first.
    UnsupportedGate(String),
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QasmError::UnsupportedGate(g) => {
                write!(f, "gate '{g}' has no OpenQASM 2.0 lowering; unroll first")
            }
        }
    }
}

impl std::error::Error for QasmError {}

/// Serializes a circuit as an OpenQASM 2.0 program.
///
/// # Errors
///
/// Returns [`QasmError::UnsupportedGate`] for multi-controlled or
/// arbitrary-unitary gates — run the transpiler's unroller first.
///
/// # Examples
///
/// ```
/// use qc_circuit::{qasm::to_qasm, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let text = to_qasm(&c).unwrap();
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> Result<String, QasmError> {
    let n = circuit.num_qubits();
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    let _ = writeln!(out, "qreg q[{n}];");
    let _ = writeln!(out, "creg c[{n}];");
    for inst in circuit.instructions() {
        let q = &inst.qubits;
        let line = match &inst.gate {
            Gate::I => format!("id q[{}];", q[0]),
            Gate::X => format!("x q[{}];", q[0]),
            Gate::Y => format!("y q[{}];", q[0]),
            Gate::Z => format!("z q[{}];", q[0]),
            Gate::H => format!("h q[{}];", q[0]),
            Gate::S => format!("s q[{}];", q[0]),
            Gate::Sdg => format!("sdg q[{}];", q[0]),
            Gate::T => format!("t q[{}];", q[0]),
            Gate::Tdg => format!("tdg q[{}];", q[0]),
            Gate::Rx(t) => format!("rx({t}) q[{}];", q[0]),
            Gate::Ry(t) => format!("ry({t}) q[{}];", q[0]),
            Gate::Rz(t) => format!("rz({t}) q[{}];", q[0]),
            Gate::U1(l) => format!("u1({l}) q[{}];", q[0]),
            Gate::U2(p, l) => format!("u2({p},{l}) q[{}];", q[0]),
            Gate::U3(t, p, l) => format!("u3({t},{p},{l}) q[{}];", q[0]),
            Gate::Cx => format!("cx q[{}],q[{}];", q[0], q[1]),
            Gate::Cz => format!("cz q[{}],q[{}];", q[0], q[1]),
            Gate::Cp(l) => format!("cu1({l}) q[{}],q[{}];", q[0], q[1]),
            Gate::Swap => format!("swap q[{}],q[{}];", q[0], q[1]),
            Gate::SwapZ => format!("cx q[{1}],q[{0}];\ncx q[{0}],q[{1}];", q[0], q[1]),
            Gate::Ccx => format!("ccx q[{}],q[{}],q[{}];", q[0], q[1], q[2]),
            Gate::Cswap => format!("cswap q[{}],q[{}],q[{}];", q[0], q[1], q[2]),
            Gate::Reset => format!("reset q[{}];", q[0]),
            Gate::Measure => format!("measure q[{0}] -> c[{0}];", q[0]),
            Gate::Barrier(_) => {
                let args: Vec<String> = q.iter().map(|&i| format!("q[{i}]")).collect();
                format!("barrier {};", args.join(","))
            }
            Gate::Annot(t, p) => format!("// ANNOT({t},{p}) q[{}]", q[0]),
            g @ (Gate::Mcx(_) | Gate::Mcz(_) | Gate::Cu(_) | Gate::Unitary(_)) => {
                return Err(QasmError::UnsupportedGate(g.name().to_string()))
            }
        };
        let _ = writeln!(out, "{line}");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_basic_program() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .ccx(0, 1, 2)
            .u3(0.1, 0.2, 0.3, 2)
            .barrier()
            .measure_all();
        let text = to_qasm(&c).unwrap();
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("ccx q[0],q[1],q[2];"));
        assert!(text.contains("u3(0.1,0.2,0.3) q[2];"));
        assert!(text.contains("barrier q[0],q[1],q[2];"));
        assert!(text.contains("measure q[1] -> c[1];"));
    }

    #[test]
    fn swapz_lowers_to_two_cx() {
        let mut c = Circuit::new(2);
        c.swapz(0, 1);
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("cx q[1],q[0];\ncx q[0],q[1];"));
    }

    #[test]
    fn annot_becomes_comment() {
        let mut c = Circuit::new(1);
        c.annot_zero(0);
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("// ANNOT(0,0) q[0]"));
    }

    #[test]
    fn rejects_unlowered_gates() {
        let mut c = Circuit::new(4);
        c.mcx(&[0, 1, 2], 3);
        assert!(matches!(to_qasm(&c), Err(QasmError::UnsupportedGate(_))));
    }

    #[test]
    fn transpiled_output_always_exports() {
        // The device basis is exportable by construction.
        let mut c = Circuit::new(2);
        c.u1(0.5, 0)
            .u2(0.1, 0.2, 1)
            .u3(1.0, 2.0, 3.0, 0)
            .cx(0, 1)
            .measure_all();
        let text = to_qasm(&c).unwrap();
        assert_eq!(text.matches("cx ").count(), 1);
    }
}
