//! OpenQASM 2.0 export and import.
//!
//! Lets circuits produced by this stack (in particular, transpiled output)
//! be loaded into Qiskit or any other OpenQASM consumer — the natural
//! cross-check against the paper's original artifact. Gates outside
//! `qelib1.inc` are lowered structurally (SWAPZ to its defining CNOT pair,
//! MCX/MCZ rejected with an error so callers unroll first); annotations
//! and barriers become comments/barriers.
//!
//! [`from_qasm`] parses the same qelib1 subset back (the wire format the
//! planned `qc-serve` compile server accepts): it is a hardened
//! recursive-descent parser that rejects malformed programs with a typed
//! [`QasmError::Parse`] carrying line and column — never a panic — and
//! validates every qubit reference, arity and parameter before touching
//! [`Circuit`]. `// ANNOT(θ,φ)` comments round-trip back into
//! [`Gate::Annot`] so the paper's state annotations survive serialization.

use crate::circuit::Circuit;
use crate::gate::Gate;
use crate::Instruction;
use std::fmt::Write as _;

/// Errors raised during QASM export or import.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QasmError {
    /// The gate has no qelib1 representation; unroll the circuit first.
    UnsupportedGate(String),
    /// The program text is malformed at the given 1-based line/column.
    Parse {
        /// 1-based line of the offending token.
        line: usize,
        /// 1-based column of the offending token.
        col: usize,
        /// What went wrong.
        message: String,
    },
}

impl QasmError {
    fn parse(line: usize, col: usize, message: impl Into<String>) -> Self {
        QasmError::Parse {
            line,
            col,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for QasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QasmError::UnsupportedGate(g) => {
                write!(f, "gate '{g}' has no OpenQASM 2.0 lowering; unroll first")
            }
            QasmError::Parse { line, col, message } => {
                write!(f, "QASM parse error at {line}:{col}: {message}")
            }
        }
    }
}

impl std::error::Error for QasmError {}

/// Serializes a circuit as an OpenQASM 2.0 program.
///
/// # Errors
///
/// Returns [`QasmError::UnsupportedGate`] for multi-controlled or
/// arbitrary-unitary gates — run the transpiler's unroller first.
///
/// # Examples
///
/// ```
/// use qc_circuit::{qasm::to_qasm, Circuit};
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let text = to_qasm(&c).unwrap();
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> Result<String, QasmError> {
    let n = circuit.num_qubits();
    let mut out = String::new();
    let _ = writeln!(out, "OPENQASM 2.0;");
    let _ = writeln!(out, "include \"qelib1.inc\";");
    let _ = writeln!(out, "qreg q[{n}];");
    let _ = writeln!(out, "creg c[{n}];");
    for inst in circuit.instructions() {
        let q = &inst.qubits;
        let line = match &inst.gate {
            Gate::I => format!("id q[{}];", q[0]),
            Gate::X => format!("x q[{}];", q[0]),
            Gate::Y => format!("y q[{}];", q[0]),
            Gate::Z => format!("z q[{}];", q[0]),
            Gate::H => format!("h q[{}];", q[0]),
            Gate::S => format!("s q[{}];", q[0]),
            Gate::Sdg => format!("sdg q[{}];", q[0]),
            Gate::T => format!("t q[{}];", q[0]),
            Gate::Tdg => format!("tdg q[{}];", q[0]),
            Gate::Rx(t) => format!("rx({t}) q[{}];", q[0]),
            Gate::Ry(t) => format!("ry({t}) q[{}];", q[0]),
            Gate::Rz(t) => format!("rz({t}) q[{}];", q[0]),
            Gate::U1(l) => format!("u1({l}) q[{}];", q[0]),
            Gate::U2(p, l) => format!("u2({p},{l}) q[{}];", q[0]),
            Gate::U3(t, p, l) => format!("u3({t},{p},{l}) q[{}];", q[0]),
            Gate::Cx => format!("cx q[{}],q[{}];", q[0], q[1]),
            Gate::Cz => format!("cz q[{}],q[{}];", q[0], q[1]),
            Gate::Cp(l) => format!("cu1({l}) q[{}],q[{}];", q[0], q[1]),
            Gate::Swap => format!("swap q[{}],q[{}];", q[0], q[1]),
            Gate::SwapZ => format!("cx q[{1}],q[{0}];\ncx q[{0}],q[{1}];", q[0], q[1]),
            Gate::Ccx => format!("ccx q[{}],q[{}],q[{}];", q[0], q[1], q[2]),
            Gate::Cswap => format!("cswap q[{}],q[{}],q[{}];", q[0], q[1], q[2]),
            Gate::Reset => format!("reset q[{}];", q[0]),
            Gate::Measure => format!("measure q[{0}] -> c[{0}];", q[0]),
            Gate::Barrier(_) => {
                let args: Vec<String> = q.iter().map(|&i| format!("q[{i}]")).collect();
                format!("barrier {};", args.join(","))
            }
            Gate::Annot(t, p) => format!("// ANNOT({t},{p}) q[{}]", q[0]),
            g @ (Gate::Mcx(_) | Gate::Mcz(_) | Gate::Cu(_) | Gate::Unitary(_)) => {
                return Err(QasmError::UnsupportedGate(g.name().to_string()))
            }
        };
        let _ = writeln!(out, "{line}");
    }
    Ok(out)
}

/// Upper bound on a parsed register width — a hardening cap so a hostile
/// header like `qreg q[999999999];` cannot force giant allocations
/// downstream (the DAG and simulator allocate per wire).
const MAX_QASM_QUBITS: usize = 4096;

/// Parses an OpenQASM 2.0 program emitted by [`to_qasm`] (the qelib1
/// subset plus `// ANNOT(θ,φ)` comments) back into a [`Circuit`].
///
/// The parser is defensive by construction: every failure — unknown gate,
/// bad arity, out-of-range or duplicate qubit, non-finite parameter,
/// malformed syntax — returns a typed [`QasmError::Parse`] with the
/// 1-based line and column of the offending token. It never panics on any
/// input string.
///
/// # Errors
///
/// Returns [`QasmError::Parse`] on malformed input.
///
/// # Examples
///
/// ```
/// use qc_circuit::qasm::{from_qasm, to_qasm};
/// use qc_circuit::Circuit;
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1).measure_all();
/// let back = from_qasm(&to_qasm(&c).unwrap()).unwrap();
/// assert_eq!(back, c);
/// ```
pub fn from_qasm(src: &str) -> Result<Circuit, QasmError> {
    Parser::new(src).program()
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Self {
        Parser {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> QasmError {
        QasmError::parse(self.line, self.col, message)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    /// Skips spaces and newlines, but **not** comments — the statement
    /// loop inspects those itself (`// ANNOT` is significant).
    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.bump();
        }
    }

    /// Consumes the rest of the current line, returning it.
    fn rest_of_line(&mut self) -> &'a str {
        let start = self.pos;
        while !matches!(self.peek(), None | Some(b'\n')) {
            self.bump();
        }
        let end = self.pos;
        self.bump(); // the newline, if any
        &self.src[start..end]
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), QasmError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!(
                "expected '{}', found {}",
                b as char,
                self.describe_next()
            )))
        }
    }

    fn describe_next(&self) -> String {
        match self.peek() {
            None => "end of input".into(),
            Some(b) => format!("'{}'", b as char),
        }
    }

    fn ident(&mut self) -> Result<&'a str, QasmError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err(format!(
                "expected identifier, found {}",
                self.describe_next()
            )));
        }
        Ok(&self.src[start..self.pos])
    }

    /// `name[index]` — a register reference. Returns (name, index).
    fn reg_ref(&mut self) -> Result<(&'a str, usize), QasmError> {
        let name = self.ident()?;
        self.expect_byte(b'[')?;
        let idx = self.uint()?;
        self.expect_byte(b']')?;
        Ok((name, idx))
    }

    fn uint(&mut self) -> Result<usize, QasmError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        if self.pos == start {
            return Err(self.err(format!("expected integer, found {}", self.describe_next())));
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }

    /// Parameter expression: `+`/`-` chains of `*`/`/` chains of atoms,
    /// where an atom is a float literal, `pi`, a parenthesized expression,
    /// or a signed atom.
    fn expr(&mut self) -> Result<f64, QasmError> {
        let mut v = self.term()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'+') => {
                    self.bump();
                    v += self.term()?;
                }
                Some(b'-') => {
                    self.bump();
                    v -= self.term()?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn term(&mut self) -> Result<f64, QasmError> {
        let mut v = self.factor()?;
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'*') => {
                    self.bump();
                    v *= self.factor()?;
                }
                Some(b'/') => {
                    self.bump();
                    v /= self.factor()?;
                }
                _ => return Ok(v),
            }
        }
    }

    fn factor(&mut self) -> Result<f64, QasmError> {
        self.skip_ws();
        match self.peek() {
            Some(b'-') => {
                self.bump();
                Ok(-self.factor()?)
            }
            Some(b'+') => {
                self.bump();
                self.factor()
            }
            Some(b'(') => {
                self.bump();
                let v = self.expr()?;
                self.expect_byte(b')')?;
                Ok(v)
            }
            Some(b'p') | Some(b'P') => {
                let id = self.ident()?;
                if id.eq_ignore_ascii_case("pi") {
                    Ok(std::f64::consts::PI)
                } else {
                    Err(self.err(format!("unknown constant '{id}'")))
                }
            }
            Some(b) if b.is_ascii_digit() || b == b'.' => self.float(),
            _ => Err(self.err(format!(
                "expected number or 'pi', found {}",
                self.describe_next()
            ))),
        }
    }

    fn float(&mut self) -> Result<f64, QasmError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.')) {
            self.bump();
        }
        // Optional exponent.
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mark = (self.pos, self.line, self.col);
            self.bump();
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.bump();
            }
            if matches!(self.peek(), Some(b'0'..=b'9')) {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            } else {
                (self.pos, self.line, self.col) = mark;
            }
        }
        self.src[start..self.pos]
            .parse()
            .map_err(|_| self.err(format!("malformed number '{}'", &self.src[start..self.pos])))
    }

    /// Comma-separated `q[i]` list up to the statement's `;`.
    fn qubit_list(&mut self, qreg: &str, width: usize) -> Result<Vec<usize>, QasmError> {
        let mut qs = Vec::new();
        loop {
            let (name, idx) = self.reg_ref()?;
            if name != qreg {
                return Err(self.err(format!("unknown quantum register '{name}'")));
            }
            if idx >= width {
                return Err(self.err(format!("qubit index {idx} out of range (qreg [{width}])")));
            }
            qs.push(idx);
            self.skip_ws();
            if self.peek() == Some(b',') {
                self.bump();
            } else {
                break;
            }
        }
        self.expect_byte(b';')?;
        if qs.len() > 1 {
            let mut sorted = qs.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if sorted.len() != qs.len() {
                return Err(self.err("duplicate qubit in operand list"));
            }
        }
        Ok(qs)
    }

    fn params(&mut self, count: usize, gate: &str) -> Result<Vec<f64>, QasmError> {
        let mut ps = Vec::new();
        self.skip_ws();
        if count == 0 {
            if self.peek() == Some(b'(') {
                return Err(self.err(format!("gate '{gate}' takes no parameters")));
            }
            return Ok(ps);
        }
        self.expect_byte(b'(')?;
        for i in 0..count {
            let v = self.expr()?;
            if !v.is_finite() {
                return Err(self.err(format!("non-finite parameter for gate '{gate}'")));
            }
            ps.push(v);
            if i + 1 < count {
                self.expect_byte(b',')?;
            }
        }
        self.expect_byte(b')')?;
        Ok(ps)
    }

    /// `// ANNOT(θ,φ) q[i]` — the exported state-annotation comment.
    fn annot(&mut self, qreg: &str, width: usize) -> Result<Instruction, QasmError> {
        self.expect_byte(b'(')?;
        let theta = self.expr()?;
        self.expect_byte(b',')?;
        let phi = self.expr()?;
        self.expect_byte(b')')?;
        if !theta.is_finite() || !phi.is_finite() {
            return Err(self.err("non-finite ANNOT parameter"));
        }
        let (name, idx) = self.reg_ref()?;
        if name != qreg {
            return Err(self.err(format!("unknown quantum register '{name}'")));
        }
        if idx >= width {
            return Err(self.err(format!("qubit index {idx} out of range (qreg [{width}])")));
        }
        Ok(Instruction::new(Gate::Annot(theta, phi), vec![idx]))
    }

    fn program(&mut self) -> Result<Circuit, QasmError> {
        // Header.
        self.skip_ws();
        let kw = self.ident()?;
        if kw != "OPENQASM" {
            return Err(self.err("program must start with 'OPENQASM 2.0;'"));
        }
        let major = self.expr()?;
        if (major - 2.0).abs() > 1e-9 {
            return Err(self.err(format!("unsupported OpenQASM version {major}")));
        }
        self.expect_byte(b';')?;

        let mut qreg: Option<(String, usize)> = None;
        let mut creg_width: Option<usize> = None;
        let mut insts: Vec<Instruction> = Vec::new();

        loop {
            self.skip_ws();
            let Some(b) = self.peek() else { break };
            // Comments: `// ANNOT(...)` is an annotation, anything else
            // is skipped.
            if b == b'/' {
                self.bump();
                if self.peek() != Some(b'/') {
                    return Err(self.err("stray '/'"));
                }
                self.bump();
                self.skip_ws_inline();
                if self.src[self.pos..].starts_with("ANNOT(") {
                    // Consume "ANNOT" then parse the annotation.
                    for _ in 0.."ANNOT".len() {
                        self.bump();
                    }
                    let (qname, width) = qreg
                        .as_ref()
                        .map(|(n, w)| (n.clone(), *w))
                        .ok_or_else(|| self.err("ANNOT before qreg declaration"))?;
                    insts.push(self.annot(&qname, width)?);
                    // Anything further on the comment line is still a
                    // comment.
                    self.rest_of_line();
                } else {
                    self.rest_of_line();
                }
                continue;
            }
            let stmt = self.ident()?;
            match stmt {
                "include" => {
                    // `include "qelib1.inc";` — accept any include target.
                    self.skip_ws();
                    if self.peek() == Some(b'"') {
                        self.bump();
                        while !matches!(self.peek(), None | Some(b'"')) {
                            self.bump();
                        }
                        if self.peek() != Some(b'"') {
                            return Err(self.err("unterminated include string"));
                        }
                        self.bump();
                    }
                    self.expect_byte(b';')?;
                }
                "qreg" => {
                    let (name, width) = self.reg_decl()?;
                    if qreg.is_some() {
                        return Err(self.err("multiple qreg declarations are not supported"));
                    }
                    qreg = Some((name.to_string(), width));
                }
                "creg" => {
                    let (_, width) = self.reg_decl()?;
                    creg_width = Some(width);
                }
                "measure" => {
                    let (qname, width) = qreg
                        .as_ref()
                        .map(|(n, w)| (n.clone(), *w))
                        .ok_or_else(|| self.err("statement before qreg declaration"))?;
                    let (name, idx) = self.reg_ref()?;
                    if name != qname {
                        return Err(self.err(format!("unknown quantum register '{name}'")));
                    }
                    if idx >= width {
                        return Err(self.err(format!("qubit index {idx} out of range")));
                    }
                    self.expect_byte(b'-')?;
                    self.expect_byte(b'>')?;
                    let (_, cidx) = self.reg_ref()?;
                    if let Some(cw) = creg_width {
                        if cidx >= cw {
                            return Err(self.err(format!("classical index {cidx} out of range")));
                        }
                    }
                    self.expect_byte(b';')?;
                    insts.push(Instruction::new(Gate::Measure, vec![idx]));
                }
                name => {
                    let (qname, width) = qreg
                        .as_ref()
                        .map(|(n, w)| (n.clone(), *w))
                        .ok_or_else(|| self.err("statement before qreg declaration"))?;
                    insts.push(self.gate_stmt(name, &qname, width)?);
                }
            }
        }
        let (_, width) = qreg.ok_or_else(|| self.err("program declares no qreg"))?;
        let mut c = Circuit::new(width);
        for inst in insts {
            c.push_instruction(inst);
        }
        Ok(c)
    }

    fn skip_ws_inline(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t')) {
            self.bump();
        }
    }

    fn reg_decl(&mut self) -> Result<(&'a str, usize), QasmError> {
        let (name, width) = {
            let name = self.ident()?;
            self.expect_byte(b'[')?;
            let w = self.uint()?;
            self.expect_byte(b']')?;
            (name, w)
        };
        self.expect_byte(b';')?;
        if width > MAX_QASM_QUBITS {
            return Err(self.err(format!(
                "register width {width} exceeds the supported maximum {MAX_QASM_QUBITS}"
            )));
        }
        Ok((name, width))
    }

    fn gate_stmt(
        &mut self,
        name: &str,
        qreg: &str,
        width: usize,
    ) -> Result<Instruction, QasmError> {
        // (arity, param count) per supported qelib1 gate; `barrier` is
        // variadic and handled separately.
        let (arity, nparams) = match name {
            "id" | "x" | "y" | "z" | "h" | "s" | "sdg" | "t" | "tdg" | "reset" => (1, 0),
            "rx" | "ry" | "rz" | "u1" => (1, 1),
            "u2" => (1, 2),
            "u3" => (1, 3),
            "cx" | "cz" | "swap" => (2, 0),
            "cu1" => (2, 1),
            "ccx" | "cswap" => (3, 0),
            "barrier" => {
                let qs = self.qubit_list(qreg, width)?;
                let n = qs.len();
                return Ok(Instruction::new(Gate::Barrier(n), qs));
            }
            other => {
                return Err(self.err(format!("unknown gate '{other}'")));
            }
        };
        let ps = self.params(nparams, name)?;
        let qs = self.qubit_list(qreg, width)?;
        if qs.len() != arity {
            return Err(self.err(format!(
                "gate '{name}' expects {arity} qubit(s), got {}",
                qs.len()
            )));
        }
        let gate = match name {
            "id" => Gate::I,
            "x" => Gate::X,
            "y" => Gate::Y,
            "z" => Gate::Z,
            "h" => Gate::H,
            "s" => Gate::S,
            "sdg" => Gate::Sdg,
            "t" => Gate::T,
            "tdg" => Gate::Tdg,
            "reset" => Gate::Reset,
            "rx" => Gate::Rx(ps[0]),
            "ry" => Gate::Ry(ps[0]),
            "rz" => Gate::Rz(ps[0]),
            "u1" => Gate::U1(ps[0]),
            "u2" => Gate::U2(ps[0], ps[1]),
            "u3" => Gate::U3(ps[0], ps[1], ps[2]),
            "cx" => Gate::Cx,
            "cz" => Gate::Cz,
            "cu1" => Gate::Cp(ps[0]),
            "swap" => Gate::Swap,
            "ccx" => Gate::Ccx,
            "cswap" => Gate::Cswap,
            _ => unreachable!("filtered above"),
        };
        Ok(Instruction::new(gate, qs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exports_basic_program() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .ccx(0, 1, 2)
            .u3(0.1, 0.2, 0.3, 2)
            .barrier()
            .measure_all();
        let text = to_qasm(&c).unwrap();
        assert!(text.starts_with("OPENQASM 2.0;"));
        assert!(text.contains("qreg q[3];"));
        assert!(text.contains("ccx q[0],q[1],q[2];"));
        assert!(text.contains("u3(0.1,0.2,0.3) q[2];"));
        assert!(text.contains("barrier q[0],q[1],q[2];"));
        assert!(text.contains("measure q[1] -> c[1];"));
    }

    #[test]
    fn swapz_lowers_to_two_cx() {
        let mut c = Circuit::new(2);
        c.swapz(0, 1);
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("cx q[1],q[0];\ncx q[0],q[1];"));
    }

    #[test]
    fn annot_becomes_comment() {
        let mut c = Circuit::new(1);
        c.annot_zero(0);
        let text = to_qasm(&c).unwrap();
        assert!(text.contains("// ANNOT(0,0) q[0]"));
    }

    #[test]
    fn rejects_unlowered_gates() {
        let mut c = Circuit::new(4);
        c.mcx(&[0, 1, 2], 3);
        assert!(matches!(to_qasm(&c), Err(QasmError::UnsupportedGate(_))));
    }

    #[test]
    fn transpiled_output_always_exports() {
        // The device basis is exportable by construction.
        let mut c = Circuit::new(2);
        c.u1(0.5, 0)
            .u2(0.1, 0.2, 1)
            .u3(1.0, 2.0, 3.0, 0)
            .cx(0, 1)
            .measure_all();
        let text = to_qasm(&c).unwrap();
        assert_eq!(text.matches("cx ").count(), 1);
    }

    #[test]
    fn parses_basic_program() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .ccx(0, 1, 2)
            .u3(0.1, 0.2, 0.3, 2)
            .barrier()
            .measure_all();
        let back = from_qasm(&to_qasm(&c).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn parses_pi_expressions() {
        let src = "OPENQASM 2.0;\nqreg q[1];\nrz(pi/2) q[0];\nrx(-pi/4) q[0];\nry(2*pi) q[0];\nu1(pi/2+pi/4) q[0];\n";
        let c = from_qasm(src).unwrap();
        let insts = c.instructions();
        assert!(
            matches!(insts[0].gate, Gate::Rz(t) if (t - std::f64::consts::FRAC_PI_2).abs() < 1e-12)
        );
        assert!(
            matches!(insts[1].gate, Gate::Rx(t) if (t + std::f64::consts::FRAC_PI_4).abs() < 1e-12)
        );
        assert!(
            matches!(insts[2].gate, Gate::Ry(t) if (t - 2.0 * std::f64::consts::PI).abs() < 1e-12)
        );
    }

    #[test]
    fn annot_round_trips() {
        let mut c = Circuit::new(2);
        c.h(1).annot_zero(0).cx(0, 1);
        let back = from_qasm(&to_qasm(&c).unwrap()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let src = "OPENQASM 2.0;\nqreg q[2];\nfrobnicate q[0];\n";
        match from_qasm(src) {
            Err(QasmError::Parse { line, message, .. }) => {
                assert_eq!(line, 3);
                assert!(message.contains("frobnicate"));
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_range_and_duplicate_qubits() {
        let base = "OPENQASM 2.0;\nqreg q[2];\n";
        assert!(matches!(
            from_qasm(&format!("{base}x q[5];")),
            Err(QasmError::Parse { .. })
        ));
        assert!(matches!(
            from_qasm(&format!("{base}cx q[1],q[1];")),
            Err(QasmError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_malformed_headers_and_registers() {
        assert!(matches!(from_qasm(""), Err(QasmError::Parse { .. })));
        assert!(matches!(from_qasm("x q[0];"), Err(QasmError::Parse { .. })));
        assert!(matches!(
            from_qasm("OPENQASM 3.0;\nqreg q[1];"),
            Err(QasmError::Parse { .. })
        ));
        // Hostile register width.
        assert!(matches!(
            from_qasm("OPENQASM 2.0;\nqreg q[999999999];"),
            Err(QasmError::Parse { .. })
        ));
        // No qreg at all.
        assert!(matches!(
            from_qasm("OPENQASM 2.0;\ncreg c[2];"),
            Err(QasmError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_wrong_arity_and_params() {
        let base = "OPENQASM 2.0;\nqreg q[3];\n";
        assert!(matches!(
            from_qasm(&format!("{base}cx q[0];")),
            Err(QasmError::Parse { .. })
        ));
        assert!(matches!(
            from_qasm(&format!("{base}h(0.5) q[0];")),
            Err(QasmError::Parse { .. })
        ));
        assert!(matches!(
            from_qasm(&format!("{base}rx() q[0];")),
            Err(QasmError::Parse { .. })
        ));
        // Division by zero makes a non-finite angle.
        assert!(matches!(
            from_qasm(&format!("{base}rx(1/0) q[0];")),
            Err(QasmError::Parse { .. })
        ));
    }

    #[test]
    fn fuzzed_garbage_never_panics() {
        // A deterministic pile of adversarial strings; the parser must
        // return typed errors (or valid circuits), never panic.
        let cases = [
            "OPENQASM 2.0; qreg q[1]; rx(((((1) q[0];",
            "OPENQASM 2.0; qreg q[1]; u3(1,2 q[0];",
            "OPENQASM 2.0;;;;;",
            "OPENQASM 2.0; qreg q[1]; measure q[0] -> ;",
            "OPENQASM 2.0; qreg q[1]; cx q[0],r[1];",
            "OPENQASM 2.0; qreg q[1]; // ANNOT(nonsense) q[0]",
            "OPENQASM 2.0; qreg q[1]; barrier ;",
            "OPENQASM 2.0; include \"unterminated",
            "\u{0}\u{1}\u{2}",
            "OPENQASM 2.0; qreg q[1]; x q[0]; garbage",
            "OPENQASM 2.0; qreg q[18446744073709551616];",
        ];
        for src in cases {
            let _ = from_qasm(src);
        }
    }

    #[test]
    fn round_trip_random_exportable_circuits() {
        // Property test over `random_circuit` families: keep only gates
        // `to_qasm` emits losslessly (SwapZ lowers to two CNOTs, so its
        // import differs structurally; Mcx/Mcz/Cu/Unitary are rejected).
        use crate::testing::random_circuit;
        for seed in 0..40u64 {
            let c = random_circuit(4, 30, seed);
            let kept: Vec<_> = c
                .instructions()
                .iter()
                .filter(|i| {
                    !matches!(
                        i.gate,
                        Gate::SwapZ | Gate::Mcx(_) | Gate::Mcz(_) | Gate::Cu(_) | Gate::Unitary(_)
                    )
                })
                .cloned()
                .collect();
            let mut filtered = Circuit::new(c.num_qubits());
            for inst in kept {
                filtered.push_instruction(inst);
            }
            let text = to_qasm(&filtered).unwrap();
            let back = from_qasm(&text).unwrap();
            assert_eq!(back, filtered, "round trip diverged for seed {seed}");
        }
    }
}
