//! Canonical content hashing of circuits.
//!
//! The `qc-serve` compile service caches transpile results
//! content-addressed: two requests carrying the *same program* must map to
//! the same cache key, and any difference — one gate, one parameter bit,
//! one qubit index — must map to a different key. [`canonical_bytes`]
//! defines that program identity: a length-prefixed, byte-exact encoding
//! of the circuit (qubit count, then per instruction the gate name, every
//! parameter's IEEE-754 bit pattern, and the qubit operands), and
//! [`content_hash`] folds it into a 128-bit FNV-1a digest.
//!
//! Properties the serving layer relies on:
//!
//! * **Deterministic** — no pointers, no hash-map iteration order, no
//!   floating-point arithmetic (bit patterns only), so the same circuit
//!   hashes identically across runs, threads and processes.
//! * **Bit-exact** — parameters are compared as `u64` bit patterns;
//!   `rz(0.1 + 0.2)` and `rz(0.3)` are *different* programs (they
//!   transpile to different gates, so they must cache separately).
//! * **Prefix-free** — every variable-length field (name, qubit list,
//!   embedded matrix) is length-prefixed, so no two distinct circuits can
//!   serialize to the same byte stream.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Appends a `u64` little-endian.
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern (bit-exact identity; note
/// `-0.0` and `0.0` hash differently, as do distinct NaN payloads — both
/// are rejected upstream by input validation anyway).
fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a length-prefixed byte string.
fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Appends one gate: name, then its parameters (length-prefixed).
fn put_gate(out: &mut Vec<u8>, gate: &Gate) {
    put_bytes(out, gate.name().as_bytes());
    match gate {
        Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::U1(t) | Gate::Cp(t) => {
            put_u64(out, 1);
            put_f64(out, *t);
        }
        Gate::U2(a, b) | Gate::Annot(a, b) => {
            put_u64(out, 2);
            put_f64(out, *a);
            put_f64(out, *b);
        }
        Gate::U3(a, b, c) => {
            put_u64(out, 3);
            put_f64(out, *a);
            put_f64(out, *b);
            put_f64(out, *c);
        }
        Gate::Mcx(n) | Gate::Mcz(n) | Gate::Barrier(n) => {
            put_u64(out, 1);
            put_u64(out, *n as u64);
        }
        Gate::Cu(m) | Gate::Unitary(m) => {
            let elems = m.as_slice();
            put_u64(out, 2 + 2 * elems.len() as u64);
            put_u64(out, m.rows() as u64);
            put_u64(out, m.cols() as u64);
            for z in elems {
                put_f64(out, z.re);
                put_f64(out, z.im);
            }
        }
        _ => put_u64(out, 0),
    }
}

/// The canonical byte encoding of a circuit — the program identity the
/// content-addressed transpile cache keys on.
///
/// # Examples
///
/// ```
/// use qc_circuit::{canonical_bytes, Circuit};
/// let mut a = Circuit::new(2);
/// a.h(0).cx(0, 1);
/// let mut b = Circuit::new(2);
/// b.h(0).cx(0, 1);
/// assert_eq!(canonical_bytes(&a), canonical_bytes(&b));
/// b.t(1);
/// assert_ne!(canonical_bytes(&a), canonical_bytes(&b));
/// ```
pub fn canonical_bytes(circuit: &Circuit) -> Vec<u8> {
    // Rough sizing: ~40 bytes per instruction avoids most reallocation.
    let mut out = Vec::with_capacity(16 + circuit.len() * 40);
    put_u64(&mut out, circuit.num_qubits() as u64);
    put_u64(&mut out, circuit.len() as u64);
    for inst in circuit.instructions() {
        put_gate(&mut out, &inst.gate);
        put_u64(&mut out, inst.qubits.len() as u64);
        for &q in &inst.qubits {
            put_u64(&mut out, q as u64);
        }
    }
    out
}

const FNV_OFFSET_128: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME_128: u128 = 0x0000000001000000000000000000013b;

/// 128-bit FNV-1a over a byte stream — the digest primitive behind
/// [`content_hash`], exposed so callers composing larger cache keys
/// (circuit + target + options) can fold extra fields into the same
/// stream.
pub fn fnv1a_128(bytes: &[u8], seed: u128) -> u128 {
    let mut h = seed;
    for &b in bytes {
        h ^= b as u128;
        h = h.wrapping_mul(FNV_PRIME_128);
    }
    h
}

/// The 128-bit content hash of a circuit: FNV-1a over
/// [`canonical_bytes`]. 128 bits keep accidental collisions out of reach
/// for any realistic cache population (birthday bound ~2⁶⁴ entries).
///
/// # Examples
///
/// ```
/// use qc_circuit::{content_hash, Circuit};
/// let mut a = Circuit::new(2);
/// a.h(0).cx(0, 1);
/// let h1 = content_hash(&a);
/// assert_eq!(h1, content_hash(&a.clone()));
/// a.rz(1e-300, 0); // even a denormal-angle gate changes the program
/// assert_ne!(h1, content_hash(&a));
/// ```
pub fn content_hash(circuit: &Circuit) -> u128 {
    fnv1a_128(&canonical_bytes(circuit), FNV_OFFSET_128)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::random_circuit;
    use qc_math::Matrix;

    #[test]
    fn identical_circuits_hash_equal() {
        for seed in 0..8 {
            let a = random_circuit(4, 30, seed);
            let b = random_circuit(4, 30, seed);
            assert_eq!(content_hash(&a), content_hash(&b));
        }
    }

    #[test]
    fn distinct_seeds_hash_distinct() {
        let hashes: Vec<u128> = (0..32)
            .map(|s| content_hash(&random_circuit(4, 30, s)))
            .collect();
        for i in 0..hashes.len() {
            for j in i + 1..hashes.len() {
                assert_ne!(hashes[i], hashes[j], "seeds {i} and {j} collided");
            }
        }
    }

    #[test]
    fn parameter_bits_matter() {
        let mut a = Circuit::new(1);
        a.rz(0.1, 0);
        let mut b = Circuit::new(1);
        b.rz(0.1 + f64::EPSILON, 0);
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn qubit_operands_matter() {
        let mut a = Circuit::new(2);
        a.cx(0, 1);
        let mut b = Circuit::new(2);
        b.cx(1, 0);
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn width_matters_even_with_identical_gates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(3);
        b.h(0);
        assert_ne!(content_hash(&a), content_hash(&b));
    }

    #[test]
    fn embedded_matrices_hash_by_content() {
        let u = Matrix::identity(2);
        let mut a = Circuit::new(1);
        a.push(crate::Gate::Unitary(u.clone()), &[0]);
        let mut b = Circuit::new(1);
        b.push(crate::Gate::Unitary(u), &[0]);
        assert_eq!(content_hash(&a), content_hash(&b));
        let mut c = Circuit::new(1);
        let flipped = Matrix::identity(2).scale(qc_math::C64::real(-1.0));
        c.push(crate::Gate::Unitary(flipped), &[0]);
        assert_ne!(content_hash(&a), content_hash(&c));
    }

    #[test]
    fn encoding_is_prefix_free_across_gate_boundaries() {
        // `barrier(2)` on [0,1] vs two 1q barriers must differ.
        let mut a = Circuit::new(2);
        a.push(crate::Gate::Barrier(2), &[0, 1]);
        let mut b = Circuit::new(2);
        b.push(crate::Gate::Barrier(1), &[0]);
        b.push(crate::Gate::Barrier(1), &[1]);
        assert_ne!(content_hash(&a), content_hash(&b));
    }
}
