//! Gate fusion: collapsing 1-qubit runs and folding 1-qubit gates into
//! adjacent two-qubit blocks before anything touches a 2ⁿ-sized buffer.
//!
//! At n ≳ 8 every kernel pass over a state vector or unitary panel is
//! memory-bound: the cost is the sweep, not the arithmetic. The planner in
//! this module therefore rewrites a gate stream to minimize the number of
//! sweeps:
//!
//! * **1q runs collapse.** Consecutive single-qubit gates on the same qubit
//!   — no matter what lies between them on *other* qubits — accumulate into
//!   one 2×2 product ([`qc_math::mul_2x2`]), applied as a single dense-1q
//!   pass.
//! * **1q gates fold into 2q blocks.** A pending 1q product is absorbed
//!   into a following two-qubit gate's 4×4 (the gate matrix
//!   right-multiplied by the embedded 2×2) unless it can do better:
//!   products that *commute through* the gate stay pending and keep
//!   growing (diagonals through phase gates, CX/Cu controls; `αI + βX`
//!   through CX targets; anything through `Swap`, relayed to the other
//!   qubit), and runs that must flush right after a dense block on the
//!   same qubit left-fold into that block's 4×4 — a planner-side 4×4
//!   product instead of a buffer sweep.
//!
//! Structured two-qubit gates with no stuck pending neighbors pass through
//! untouched (their specialized kernels beat a dense 4×4); gates on three
//! or more qubits flush their qubits' non-commuting pending products and
//! pass through.
//!
//! Fusion is exactly unitary-preserving in exact arithmetic and agrees with
//! the unfused stream to rounding (the oracle tests in
//! `tests/kernel_oracle.rs` pin both paths against
//! [`crate::circuit_unitary_reference`]). Consumers: [`crate::circuit_unitary`]
//! streams fused ops over column panels, and `qc_sim::Statevector` applies
//! them to its amplitude vector.

use crate::circuit::Instruction;
use qc_math::{mul_2x2, KernelOp, Matrix, C64};

/// One fused instruction: a kernel op plus the (global) qubits it acts on.
#[derive(Clone, Debug)]
pub struct FusedInst<'c> {
    /// Global qubit indices, `qubits[0]` = the op's least-significant bit.
    pub qubits: Vec<usize>,
    kernel: FusedKernel<'c>,
}

/// The op payload of a [`FusedInst`]: either a pass-through of the original
/// gate's kernel (possibly borrowing its matrix) or an owned fusion product.
#[derive(Clone, Debug)]
enum FusedKernel<'c> {
    /// The original gate's kernel, untouched.
    Passthrough(KernelOp<'c>),
    /// A collapsed run of single-qubit gates (row-major 2×2).
    OneQ([C64; 4]),
    /// A two-qubit block with folded single-qubit neighbors (4×4).
    Dense(Matrix),
}

impl FusedInst<'_> {
    /// The kernel op to hand to [`qc_math::KernelEngine`]; borrows `self`
    /// for the owned dense case.
    pub fn op(&self) -> KernelOp<'_> {
        match &self.kernel {
            FusedKernel::Passthrough(op) => op.clone(),
            FusedKernel::OneQ(m) => KernelOp::OneQ(*m),
            FusedKernel::Dense(m) => KernelOp::Dense(m),
        }
    }
}

/// Embeds a 2×2 on local bit `bit` of a two-qubit block (little-endian:
/// index = b₁b₀).
fn embed_1q_in_4x4(m: &[C64; 4], bit: usize) -> Matrix {
    let mut out = Matrix::zeros(4, 4);
    for high in 0..2 {
        for (r, c, v) in [(0, 0, m[0]), (0, 1, m[1]), (1, 0, m[2]), (1, 1, m[3])] {
            let (row, col) = if bit == 0 {
                ((high << 1) | r, (high << 1) | c)
            } else {
                ((r << 1) | high, (c << 1) | high)
            };
            out[(row, col)] = v;
        }
    }
    out
}

/// The exact 2×2 identity (what an even run of self-inverse gates collapses
/// to); flushing it would waste a full sweep.
fn is_exact_identity(m: &[C64; 4]) -> bool {
    m[0] == C64::ONE && m[1] == C64::ZERO && m[2] == C64::ZERO && m[3] == C64::ONE
}

/// Fuses a unitary gate stream for `num_qubits` qubits. Directives
/// (barriers, annotations) are dropped — they carry no unitary action.
///
/// # Panics
///
/// Panics on non-unitary instructions (reset/measure); segment streams at
/// such boundaries before planning (see `qc_sim::Statevector`).
pub fn fuse_instructions(insts: &[Instruction], num_qubits: usize) -> Vec<FusedInst<'_>> {
    Planner::new(num_qubits).plan(insts)
}

/// Streaming fusion state: per-qubit pending 1q products plus, per qubit,
/// the index of the most recent emitted dense 2q block it participates in
/// and nothing has touched since (the left-fold target for flushes).
struct Planner<'c> {
    pending: Vec<Option<[C64; 4]>>,
    last_dense: Vec<Option<usize>>,
    out: Vec<FusedInst<'c>>,
}

impl<'c> Planner<'c> {
    fn new(num_qubits: usize) -> Self {
        Planner {
            pending: vec![None; num_qubits],
            last_dense: vec![None; num_qubits],
            out: Vec::new(),
        }
    }

    /// Emits qubit `q`'s pending product: left-folded into the most recent
    /// dense block on `q` when one is still foldable, as its own dense-1q
    /// (or cheaper diagonal) pass otherwise. Exact identities (e.g. X·X)
    /// are dropped.
    fn flush(&mut self, q: usize) {
        let Some(m) = self.pending[q].take() else {
            return;
        };
        if is_exact_identity(&m) {
            return;
        }
        if let Some(idx) = self.last_dense[q] {
            let target = &mut self.out[idx];
            let bit = if target.qubits[0] == q { 0 } else { 1 };
            let FusedKernel::Dense(m4) = &mut target.kernel else {
                unreachable!("last_dense only indexes Dense ops");
            };
            // The run happened *after* the block: left-multiply.
            *m4 = embed_1q_in_4x4(&m, bit).matmul(m4);
            return;
        }
        let kernel = if is_diagonal(&m) {
            // The diagonal kernel multiplies each half-run once (and skips
            // unit factors) — half the arithmetic of a dense 2×2 pass.
            FusedKernel::Passthrough(KernelOp::OneQDiag([m[0], m[3]]))
        } else {
            FusedKernel::OneQ(m)
        };
        self.out.push(FusedInst {
            qubits: vec![q],
            kernel,
        });
    }

    fn plan(mut self, insts: &'c [Instruction]) -> Vec<FusedInst<'c>> {
        for inst in insts {
            if inst.gate.is_directive() {
                continue;
            }
            if let Some(m) = inst.gate.matrix2x2() {
                let q = inst.qubits[0];
                self.pending[q] = Some(match self.pending[q] {
                    Some(prev) => mul_2x2(&m, &prev),
                    None => m,
                });
                continue;
            }
            let op = inst.gate.kernel().unwrap_or_else(|| {
                panic!("non-unitary instruction {} in fused gate stream", inst.gate)
            });
            if inst.qubits.len() == 2 && matches!(op, KernelOp::Dense(_)) {
                self.fold_dense_2q(inst);
            } else {
                self.pass_structured(inst, op);
            }
        }
        for q in 0..self.pending.len() {
            self.flush(q);
        }
        self.out
    }

    /// Plans a structured (non-dense) gate of any arity. Pending neighbors
    /// are, in order of preference: left-folded into an earlier dense block
    /// (free — a planner-side 4×4 product, no sweep), *commuted through*
    /// the gate when algebra allows (extending the run), relayed to the
    /// other qubit for `Swap`, or — for a 2q gate with any product still
    /// stuck — folded with the gate into one dense 4×4 (one sweep instead
    /// of a 1q pass plus the structured pass). Only stuck products on 3+
    /// qubit gates are flushed as their own pass.
    fn pass_structured(&mut self, inst: &'c Instruction, op: KernelOp<'c>) {
        // Free folds into earlier dense blocks first; a product folded here
        // no longer needs to commute with this gate.
        for &q in &inst.qubits {
            if self.pending[q].is_some() && self.last_dense[q].is_some() {
                self.flush(q);
            }
        }
        if matches!(op, KernelOp::Swap) {
            // P(a) · Swap ≡ Swap · P(b): pending products change qubit and
            // stay pending; the swap remains a pure copy pass.
            let (a, b) = (inst.qubits[0], inst.qubits[1]);
            self.pending.swap(a, b);
        } else {
            let keep: Vec<bool> = inst
                .qubits
                .iter()
                .map(|&q| match &self.pending[q] {
                    Some(m) => commutes_through(&op, &inst.qubits, q, m),
                    None => true,
                })
                .collect();
            if inst.qubits.len() == 2 && keep.iter().any(|k| !k) {
                // Both sides stuck: absorbing them and the gate into one
                // dense 4×4 beats two 1q passes plus the structured pass.
                self.fold_dense_2q(inst);
                return;
            }
            for (&q, kept) in inst.qubits.iter().zip(&keep) {
                if !kept {
                    self.flush(q);
                }
            }
        }
        for &q in &inst.qubits {
            self.last_dense[q] = None;
        }
        self.out.push(FusedInst {
            qubits: inst.qubits.clone(),
            kernel: FusedKernel::Passthrough(op),
        });
    }

    /// Folds a two-qubit gate and its qubits' pending products into one
    /// dense 4×4: the gate's matrix right-multiplied by the embedded 2×2s
    /// (they act first; products on different bits commute). The block is
    /// recorded as both qubits' left-fold target.
    fn fold_dense_2q(&mut self, inst: &'c Instruction) {
        let (a, b) = (inst.qubits[0], inst.qubits[1]);
        let mut m4 = inst
            .gate
            .matrix()
            .expect("two-qubit unitary gate has a matrix");
        if let Some(m) = self.pending[a].take() {
            m4 = m4.matmul(&embed_1q_in_4x4(&m, 0));
        }
        if let Some(m) = self.pending[b].take() {
            m4 = m4.matmul(&embed_1q_in_4x4(&m, 1));
        }
        let idx = self.out.len();
        self.out.push(FusedInst {
            qubits: vec![a, b],
            kernel: FusedKernel::Dense(m4),
        });
        self.last_dense[a] = Some(idx);
        self.last_dense[b] = Some(idx);
    }
}

/// Is `m` diagonal (in exact arithmetic — diagonal gates produce exact
/// structural zeros)?
fn is_diagonal(m: &[C64; 4]) -> bool {
    m[1] == C64::ZERO && m[2] == C64::ZERO
}

/// Whether the 1q product `m` on qubit `q` commutes through the structured
/// op, letting it stay pending (and keep growing) instead of flushing:
///
/// * all-ones phases (`Cz`/`Cp`/`Mcz`) commute with any diagonal;
/// * a controlled-X commutes with diagonals on its controls and with
///   `αI + βX` matrices on its target;
/// * a controlled-1q (`Cu`) commutes with diagonals on its control.
fn commutes_through(op: &KernelOp<'_>, qubits: &[usize], q: usize, m: &[C64; 4]) -> bool {
    match op {
        KernelOp::PhaseAllOnes(_) => is_diagonal(m),
        KernelOp::ControlledX => {
            let target = *qubits.last().expect("controlled-X has qubits");
            if q == target {
                m[0] == m[3] && m[1] == m[2]
            } else {
                is_diagonal(m)
            }
        }
        KernelOp::ControlledOneQ(_) => q == qubits[0] && is_diagonal(m),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::unitary::{circuit_unitary_reference, embed};

    /// The dense local matrix of any kernel op (k = qubit count) — used to
    /// check fused plans without going through the engine.
    fn op_matrix(op: &KernelOp<'_>, k: usize) -> Matrix {
        let side = 1usize << k;
        match op {
            KernelOp::OneQ(m) => Matrix::from_rows(&[vec![m[0], m[1]], vec![m[2], m[3]]]),
            KernelOp::OneQDiag(d) => Matrix::diag(d),
            KernelOp::ControlledOneQ(u) => {
                let mut c = Matrix::identity(4);
                c[(1, 1)] = u[0];
                c[(1, 3)] = u[1];
                c[(3, 1)] = u[2];
                c[(3, 3)] = u[3];
                c
            }
            KernelOp::PhaseAllOnes(p) => {
                let mut m = Matrix::identity(side);
                m[(side - 1, side - 1)] = *p;
                m
            }
            KernelOp::ControlledX => {
                // Target = last qubit = local bit k-1; controls are the rest.
                let ctrl = (side >> 1) - 1;
                Matrix::from_fn(side, side, |r, c| {
                    let flip = if c & ctrl == ctrl { c ^ (side >> 1) } else { c };
                    if r == flip {
                        C64::ONE
                    } else {
                        C64::ZERO
                    }
                })
            }
            KernelOp::Swap => Matrix::from_fn(4, 4, |r, c| {
                let sw = ((c & 1) << 1) | (c >> 1);
                if r == sw {
                    C64::ONE
                } else {
                    C64::ZERO
                }
            }),
            KernelOp::Permutation(perm) => {
                let mut m = Matrix::zeros(side, side);
                for (l, &p) in perm.iter().enumerate() {
                    m[(p, l)] = C64::ONE;
                }
                m
            }
            KernelOp::Dense(d) => (*d).clone(),
        }
    }

    /// Applies a fused plan densely via embedding — an engine-independent
    /// check that planning alone preserves the unitary.
    fn plan_unitary(plan: &[FusedInst<'_>], n: usize) -> Matrix {
        let mut u = Matrix::identity(1 << n);
        for fi in plan {
            let m = op_matrix(&fi.op(), fi.qubits.len());
            u = embed(&m, &fi.qubits, n).matmul(&u);
        }
        u
    }

    #[test]
    fn one_qubit_run_collapses_to_single_op() {
        let mut c = Circuit::new(2);
        c.h(0).s(0).t(0).h(0);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 1);
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    #[test]
    fn interleaved_runs_collapse_per_qubit() {
        // Gates alternate qubits; each qubit's run still collapses.
        let mut c = Circuit::new(2);
        c.h(0).h(1).t(0).s(1).h(0).h(1);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 2);
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    #[test]
    fn one_q_gates_fold_into_two_qubit_block() {
        let mut c = Circuit::new(2);
        c.h(0).t(1).cx(0, 1);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 1, "h, t and cx must fuse into one 4×4");
        assert!(matches!(plan[0].kernel, FusedKernel::Dense(_)));
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    #[test]
    fn bare_structured_two_qubit_gates_pass_through() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cz(1, 2).swap(0, 2);
        let plan = fuse_instructions(c.instructions(), 3);
        assert_eq!(plan.len(), 3);
        assert!(plan
            .iter()
            .all(|fi| matches!(fi.kernel, FusedKernel::Passthrough(_))));
    }

    #[test]
    fn exactly_self_inverse_run_vanishes() {
        // X·X and Z·Z are exact identities in f64 (0/±1 entries); a flushed
        // exact identity would waste a full sweep, so it is dropped. H·H is
        // *not* exact (1/√2 rounds) and must still be emitted.
        let mut c = Circuit::new(1);
        c.x(0).x(0).z(0).z(0);
        assert!(fuse_instructions(c.instructions(), 1).is_empty());
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert_eq!(fuse_instructions(c.instructions(), 1).len(), 1);
    }

    #[test]
    fn three_qubit_gate_flushes_non_commuting_neighbors() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).ccx(0, 1, 2);
        let plan = fuse_instructions(c.instructions(), 3);
        // Two flushed Hadamards (H does not commute with a control) then
        // the passthrough Toffoli.
        assert_eq!(plan.len(), 3);
        assert!(matches!(plan[2].kernel, FusedKernel::Passthrough(_)));
        assert_eq!(plan[2].qubits, vec![0, 1, 2]);
    }

    #[test]
    fn diagonal_products_commute_through_controls() {
        // T on a CX control and S·T on a CZ qubit stay pending through the
        // 2q gates and keep accumulating; only one diagonal pass remains.
        let mut c = Circuit::new(2);
        c.t(0).cx(0, 1).s(0).cz(0, 1).t(0);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 3, "cx, cz and one merged diagonal run");
        assert!(matches!(plan[2].op(), KernelOp::OneQDiag(_)));
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    #[test]
    fn swap_relays_pending_products() {
        // H(0) commutes through Swap(0,1) as H(1), merging with the later
        // H(1)·X(1) run; the swap stays a pure passthrough.
        let mut c = Circuit::new(2);
        c.h(0).swap(0, 1).x(1).h(1);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 2, "swap plus one merged 1q run");
        assert!(matches!(plan[0].op(), KernelOp::Swap));
        assert_eq!(plan[1].qubits, vec![1]);
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    #[test]
    fn trailing_runs_left_fold_into_dense_blocks() {
        // cu makes a dense block on (0,1); the later H(1)·T(1) run folds
        // back into it instead of costing its own pass.
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).t(1).h(1);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 1, "everything folds into the one 4×4");
        assert!(matches!(plan[0].kernel, FusedKernel::Dense(_)));
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    #[test]
    fn directives_are_dropped_and_do_not_break_runs() {
        let mut c = Circuit::new(2);
        c.h(0).barrier().t(0).annot_zero(1).h(0);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn fused_plan_preserves_random_circuit_unitaries() {
        use crate::testing::random_circuit;
        for n in 1..=4usize {
            for seed in 0..4u64 {
                let c = random_circuit(n, 20, 1000 + seed * 10 + n as u64);
                let plan = fuse_instructions(c.instructions(), n);
                let got = plan_unitary(&plan, n);
                let want = circuit_unitary_reference(&c);
                assert!(
                    got.approx_eq(&want, 1e-9),
                    "fusion changed the unitary on {n} qubits, seed {seed}"
                );
            }
        }
    }
}
