//! Gate fusion: collapsing 1-qubit runs and consolidating neighborhoods of
//! up to three qubits into dense blocks before anything touches a 2ⁿ-sized
//! buffer.
//!
//! At n ≳ 8 every kernel pass over a state vector or unitary panel is
//! memory-bound: the cost is the sweep, not the arithmetic. The planner in
//! this module therefore rewrites a gate stream to minimize the number of
//! sweeps:
//!
//! * **1q runs collapse.** Consecutive single-qubit gates on the same qubit
//!   — no matter what lies between them on *other* qubits — accumulate into
//!   one 2×2 product ([`qc_math::mul_2x2`]), applied as a single dense-1q
//!   pass.
//! * **1q gates fold into dense blocks.** A pending 1q product is absorbed
//!   into a following dense block's matrix (right-multiplied, it acts
//!   first) unless it can do better: products that *commute through* a
//!   structured gate stay pending and keep growing (diagonals through
//!   phase gates, CX/Cu controls; `αI + βX` through CX targets; anything
//!   through `Swap`, relayed to the other qubit), and runs that must flush
//!   right after a dense block on the same qubit left-fold into that
//!   block's matrix — a planner-side small product instead of a buffer
//!   sweep.
//! * **Blocks consolidate in-stream (k ≤ 3).** An emitted dense block stays
//!   *open* ([`crate::blocks::BlockTracker`]): a later gate folds into it
//!   when every shared qubit is unperturbed since the block was emitted and
//!   every added qubit is untouched since then. Same-pair 2q blocks merge
//!   into one 4×4 ([`qc_math::mul_4x4`], orientation-swapped when the pair
//!   is listed in the opposite order); overlapping 2q/1q neighborhoods on
//!   ≤ 3 distinct qubits grow into one 8×8 served by the register-blocked
//!   dense-3q kernel; and structured gates confined to an open block's
//!   qubits (a CZ inside a QV block, say) are absorbed for free instead of
//!   flushing it.
//!
//! Growth is governed by a **cost model** ([`FusionProfile`]): a merge happens
//! only when the widened dense sweep is cheaper than the sweeps it
//! replaces, so cheap structured kernels (a bare CX or CZ) keep their
//! specialized passes instead of inflating a block. On small registers the
//! dense/structured trade-off inverts; a merge producing a k-qubit dense
//! sweep therefore requires `n ≥ k + 2` (for n ≤ k+1 the planner behaves
//! exactly like the pre-consolidation planner).
//!
//! Structured gates with no stuck pending neighbors and no absorbing block
//! pass through untouched; gates on four or more qubits flush their
//! qubits' non-commuting pending products and pass through.
//!
//! Fusion is exactly unitary-preserving in exact arithmetic and agrees with
//! the unfused stream to rounding (the oracle tests in
//! `tests/kernel_oracle.rs` pin both paths against
//! [`crate::circuit_unitary_reference`]). Consumers: [`crate::circuit_unitary`]
//! streams fused ops over column panels, and `qc_sim::Statevector` applies
//! them to its amplitude vector.

use crate::blocks::{BlockTracker, Membership};
use crate::circuit::Instruction;
use crate::unitary::embed;
use qc_math::{mul_2x2, mul_4x4, KernelOp, Matrix, C64};

/// One fused instruction: a kernel op plus the (global) qubits it acts on.
#[derive(Clone, Debug)]
pub struct FusedInst<'c> {
    /// Global qubit indices, `qubits[0]` = the op's least-significant bit.
    pub qubits: Vec<usize>,
    kernel: FusedKernel<'c>,
}

/// The op payload of a [`FusedInst`]: either a pass-through of the original
/// gate's kernel (possibly borrowing its matrix) or an owned fusion product.
#[derive(Clone, Debug)]
enum FusedKernel<'c> {
    /// The original gate's kernel, untouched.
    Passthrough(KernelOp<'c>),
    /// A collapsed run of single-qubit gates (row-major 2×2).
    OneQ([C64; 4]),
    /// A two-qubit block with folded single-qubit neighbors (4×4).
    Dense(Matrix),
}

impl FusedInst<'_> {
    /// The kernel op to hand to [`qc_math::KernelEngine`]; borrows `self`
    /// for the owned dense case.
    pub fn op(&self) -> KernelOp<'_> {
        match &self.kernel {
            FusedKernel::Passthrough(op) => op.clone(),
            FusedKernel::OneQ(m) => KernelOp::OneQ(*m),
            FusedKernel::Dense(m) => KernelOp::Dense(m),
        }
    }
}

/// Embeds a 2×2 on local bit `bit` of a two-qubit block (little-endian:
/// index = b₁b₀).
fn embed_1q_in_4x4(m: &[C64; 4], bit: usize) -> Matrix {
    let mut out = Matrix::zeros(4, 4);
    for high in 0..2 {
        for (r, c, v) in [(0, 0, m[0]), (0, 1, m[1]), (1, 0, m[2]), (1, 1, m[3])] {
            let (row, col) = if bit == 0 {
                ((high << 1) | r, (high << 1) | c)
            } else {
                ((r << 1) | high, (c << 1) | high)
            };
            out[(row, col)] = v;
        }
    }
    out
}

/// Embeds a 2×2 on local bit `bit` of a k-qubit dense block.
fn embed_1q_in_dense(m: &[C64; 4], bit: usize, k: usize) -> Matrix {
    if k == 2 {
        return embed_1q_in_4x4(m, bit);
    }
    let m2 = Matrix::from_rows(&[vec![m[0], m[1]], vec![m[2], m[3]]]);
    embed(&m2, &[bit], k)
}

/// Reindexes a 4×4 so the roles of local bits 0 and 1 swap — the
/// orientation adjustment for merging a same-pair gate whose qubit order is
/// the reverse of its block's.
fn swap_2q_orientation(m: &Matrix) -> Matrix {
    let sw = |x: usize| ((x & 1) << 1) | (x >> 1);
    Matrix::from_fn(4, 4, |r, c| m[(sw(r), sw(c))])
}

/// The planner's sweep cost model, in units of one multiply-add per
/// touched amplitude.
///
/// Merges that only trade memory passes for arithmetic (growing two
/// overlapping 4×4 blocks into one 8×8 keeps the multiply-adds equal) pay
/// off exactly when a pass is expensive relative to a multiply-add — which
/// depends on where the buffer lives, i.e. on the *consumer*:
///
/// * [`FusionProfile::panels`] — `circuit_unitary` streams the plan over
///   L2-sized column panels; passes run at cache bandwidth and are cheap,
///   so only arithmetic-reducing merges (same-pair folds, in-block
///   absorption, 1q left-folds) pay.
/// * [`FusionProfile::statevector`] — one 2ⁿ-amplitude vector; once it
///   outgrows L2 every pass streams from L3/DRAM and saving sweeps is
///   worth widening blocks to k = 3.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FusionProfile {
    /// Cost of streaming one full pass over the buffer, per amplitude,
    /// relative to one multiply-add.
    pub pass_cost: f64,
    /// Multiply-add efficiency penalty of the 8-way dense mix relative to
    /// the 2-/4-way kernels (64 coefficients exceed the register budget).
    pub dense3_weight: f64,
}

/// A statevector no wider than this stays cache-resident (2¹⁶ amplitudes =
/// 1 MiB of `C64`), making passes cheap; beyond it they stream.
const CACHE_RESIDENT_QUBITS: usize = 16;

/// Fallback multiply-add efficiency penalty of the 8-way dense mix
/// relative to the 2-/4-way kernels (64 coefficients exceed the register
/// budget), used when the microcalibration is unavailable or disabled.
const DENSE3_PENALTY: f64 = 1.4;

/// The dense-3q register-pressure weight: measured once per process on
/// this host ([`qc_math::calibrated_dense3_penalty`]), the hand-set
/// constant when calibration is disabled (`RPO_CALIBRATE=0`) or degenerate.
fn dense3_penalty() -> f64 {
    qc_math::calibrated_dense3_penalty().unwrap_or(DENSE3_PENALTY)
}

/// The no-measurement fallback pass costs: cache-resident and streaming,
/// the pre-calibration two-point model.
const FALLBACK_CHEAP_PASS: f64 = 1.0;
const FALLBACK_STREAMING_PASS: f64 = 6.0;

impl FusionProfile {
    /// Cost profile for cache-blocked panel streaming (`circuit_unitary`).
    /// Panels are sized to stay L2-resident by construction, so the
    /// cache-resident constant applies regardless of calibration.
    pub fn panels() -> Self {
        // Panels keep the constant weight: k = 3 growth is never
        // profitable in L2-resident panels by design (see ROADMAP), and a
        // host-measured weight must not be able to flip that.
        FusionProfile {
            pass_cost: FALLBACK_CHEAP_PASS,
            dense3_weight: DENSE3_PENALTY,
        }
    }

    /// Cost profile for panel streaming with host-measured constants — the
    /// "k = 3 panels" revisit (ROADMAP carried-over item): now that the
    /// stealing pool fans panels out across workers, a host where even
    /// L2-resident passes measure expensive relative to multiply-adds would
    /// profit from growing panels' blocks to 8×8. Wiring the measured
    /// cache-resident pass cost through the existing calibration hook lets
    /// the planner make that call per host instead of pinning it. Measured
    /// on this class of hardware the cheap-pass cost stays ≈ 1–2 — far
    /// below the ≈ `8·w − 4` break-even for trading a pass for an 8-way
    /// mix — so panels keep 4×4 blocks in practice; [`FusionProfile::panels`]
    /// remains the pinned-constant profile for shape-sensitive tests.
    pub fn panels_calibrated() -> Self {
        FusionProfile {
            pass_cost: qc_math::calibrated_cheap_pass_cost().unwrap_or(FALLBACK_CHEAP_PASS),
            dense3_weight: dense3_penalty(),
        }
    }

    /// Cost profile for applying the plan to one 2ⁿ-amplitude vector.
    ///
    /// The two operating points (cache-resident below 2¹⁶ amplitudes,
    /// streaming above) come from a one-time per-process microcalibration
    /// ([`qc_math::calibrated_cheap_pass_cost`] /
    /// [`qc_math::calibrated_streaming_pass_cost`], each measured lazily
    /// on first use) of this host's pass-per-madd ratios; when the
    /// measurement is unavailable or disabled (`RPO_CALIBRATE=0`) the
    /// historical constants (1 and 6) apply.
    pub fn statevector(n: usize) -> Self {
        let pass_cost = if n > CACHE_RESIDENT_QUBITS {
            qc_math::calibrated_streaming_pass_cost().unwrap_or(FALLBACK_STREAMING_PASS)
        } else {
            qc_math::calibrated_cheap_pass_cost().unwrap_or(FALLBACK_CHEAP_PASS)
        };
        FusionProfile {
            pass_cost,
            dense3_weight: dense3_penalty(),
        }
    }

    /// The cost of a dense k-qubit sweep: one pass plus 2ᵏ multiply-adds
    /// per amplitude (weighted for the 8-way mix's register pressure).
    fn dense_sweep_cost(&self, k: usize) -> f64 {
        let weight = if k >= 3 { self.dense3_weight } else { 1.0 };
        self.pass_cost + weight * (1usize << k) as f64
    }

    /// Estimated cost of one kernel sweep for `op` on `k` qubits:
    /// `touched-buffer fraction × (pass cost + multiply-adds per touched
    /// amplitude)`.
    fn sweep_cost(&self, op: &KernelOp<'_>, k: usize) -> f64 {
        let pass = self.pass_cost;
        match op {
            KernelOp::OneQ(_) => pass + 2.0,
            KernelOp::OneQDiag(_) => pass + 1.0,
            KernelOp::ControlledOneQ(_) => 0.5 * (pass + 2.0),
            KernelOp::PhaseAllOnes(_) => (pass + 1.0) / (1usize << k) as f64,
            KernelOp::ControlledX => 2.0 * (pass + 1.0) / (1usize << k) as f64,
            KernelOp::Swap => 0.5 * (pass + 1.0),
            KernelOp::Permutation(_) => pass + 1.0,
            KernelOp::Dense(m) => pass + m.rows() as f64,
        }
    }

    /// The flush cost of a stuck pending 1q product.
    fn flush_cost(&self, diagonal: bool) -> f64 {
        self.pass_cost + if diagonal { 1.0 } else { 2.0 }
    }
}

/// The exact 2×2 identity (what an even run of self-inverse gates collapses
/// to); flushing it would waste a full sweep.
fn is_exact_identity(m: &[C64; 4]) -> bool {
    m[0] == C64::ONE && m[1] == C64::ZERO && m[2] == C64::ZERO && m[3] == C64::ONE
}

/// Fuses a unitary gate stream for `num_qubits` qubits with the
/// state-vector cost profile (the plan's natural buffer is one
/// 2ⁿ-amplitude vector). Directives (barriers, annotations) are dropped —
/// they carry no unitary action.
///
/// # Panics
///
/// Panics on non-unitary instructions (reset/measure); segment streams at
/// such boundaries before planning (see `qc_sim::Statevector`).
pub fn fuse_instructions(insts: &[Instruction], num_qubits: usize) -> Vec<FusedInst<'_>> {
    fuse_instructions_with(insts, num_qubits, FusionProfile::statevector(num_qubits))
}

/// [`fuse_instructions`] with an explicit cost profile — consumers that
/// stream the plan over cache-blocked panels ([`crate::circuit_unitary`])
/// pass [`FusionProfile::panels`].
pub fn fuse_instructions_with(
    insts: &[Instruction],
    num_qubits: usize,
    profile: FusionProfile,
) -> Vec<FusedInst<'_>> {
    Planner::new(num_qubits, profile).plan(insts)
}

/// One maximal run of equal shard-locality ops in a plan scheduled by
/// [`schedule_fused`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleGroup {
    /// Index of the run's first op in the scheduled plan.
    pub start: usize,
    /// Number of consecutive ops in the run.
    pub len: usize,
    /// True when every qubit of every op in the run lies below the shard
    /// bit, so the whole run can be applied shard-by-shard without any
    /// cross-shard amplitude traffic.
    pub local: bool,
}

impl ScheduleGroup {
    /// The op index range this group covers.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.len
    }
}

/// Reorders commuting fused ops in place to minimize cross-shard amplitude
/// traffic, and reports the resulting runs.
///
/// An op is *shard-local* when all its qubits lie below `shard_qubits`:
/// applied to a statevector cut into contiguous 2^`shard_qubits`-amplitude
/// shards, it never mixes amplitudes across a shard boundary, so a run of
/// such ops can be applied one cache-resident shard at a time — one
/// streaming pass over the vector for the whole run instead of one per op.
/// The scheduler bubbles each shard-local op leftward past immediately
/// preceding non-local ops whose qubit support is disjoint from its own
/// (disjoint-support ops act on different tensor factors and commute
/// *exactly*, not merely approximately), clustering local ops into maximal
/// runs. Ops of equal locality never reorder and overlapping supports are
/// never crossed, so the schedule is a deterministic function of the plan:
/// the same plan yields the same op order and the same groups at every
/// thread count.
///
/// Note the reorder changes floating-point summation order relative to the
/// unscheduled plan (commuting exactly in exact arithmetic, to roundoff in
/// f64) — equivalence to a reference stays within the usual oracle
/// tolerances, while bit-identity across thread counts is preserved because
/// the schedule itself is thread-count independent.
pub fn schedule_fused(plan: &mut [FusedInst<'_>], shard_qubits: usize) -> Vec<ScheduleGroup> {
    fn local(fi: &FusedInst<'_>, shard_qubits: usize) -> bool {
        fi.qubits.iter().all(|&q| q < shard_qubits)
    }
    fn disjoint(a: &FusedInst<'_>, b: &FusedInst<'_>) -> bool {
        a.qubits.iter().all(|q| !b.qubits.contains(q))
    }
    for i in 1..plan.len() {
        let mut j = i;
        while j > 0
            && local(&plan[j], shard_qubits)
            && !local(&plan[j - 1], shard_qubits)
            && disjoint(&plan[j], &plan[j - 1])
        {
            plan.swap(j - 1, j);
            j -= 1;
        }
    }
    let mut groups = Vec::new();
    let mut start = 0;
    while start < plan.len() {
        let is_local = local(&plan[start], shard_qubits);
        let mut end = start + 1;
        while end < plan.len() && local(&plan[end], shard_qubits) == is_local {
            end += 1;
        }
        groups.push(ScheduleGroup {
            start,
            len: end - start,
            local: is_local,
        });
        start = end;
    }
    groups
}

/// Streaming fusion state: per-qubit pending 1q products plus the shared
/// open-block membership tracker ([`BlockTracker`], per-wire mode) mapping
/// qubits to the most recent emitted dense block they can still fold into.
/// Block positions recorded in the tracker are indices into `out`.
struct Planner<'c> {
    n: usize,
    profile: FusionProfile,
    pending: Vec<Option<[C64; 4]>>,
    tracker: BlockTracker,
    out: Vec<FusedInst<'c>>,
}

impl<'c> Planner<'c> {
    fn new(num_qubits: usize, profile: FusionProfile) -> Self {
        Planner {
            n: num_qubits,
            profile,
            pending: vec![None; num_qubits],
            tracker: BlockTracker::new(num_qubits, 3),
            out: Vec::new(),
        }
    }

    /// Whether a merge that results in a k-qubit dense block is allowed on
    /// this register: on n ≤ k+1 qubits the dense/structured trade-off
    /// inverts (the "block" is most of the buffer), so the planner keeps
    /// its pre-consolidation behavior there.
    fn merge_arity_ok(&self, union_k: usize) -> bool {
        self.n >= union_k + 2
    }

    /// Emits qubit `q`'s pending product: left-folded into the open dense
    /// block on `q` when one exists (free — a planner-side product, no
    /// sweep), as its own dense-1q (or cheaper diagonal) pass otherwise.
    /// Exact identities (e.g. X·X) are dropped.
    fn flush(&mut self, q: usize) {
        let Some(m) = self.pending[q].take() else {
            return;
        };
        if is_exact_identity(&m) {
            return;
        }
        if let Some(block) = self.tracker.owner(q) {
            let idx = self.tracker.block_pos(block);
            let target = &mut self.out[idx];
            let k = target.qubits.len();
            let bit = target
                .qubits
                .iter()
                .position(|&w| w == q)
                .expect("owned qubit is in its block");
            let FusedKernel::Dense(mk) = &mut target.kernel else {
                unreachable!("the tracker only indexes Dense ops");
            };
            // The run happened *after* the block: left-multiply.
            *mk = embed_1q_in_dense(&m, bit, k).matmul(mk);
            return;
        }
        let kernel = if is_diagonal(&m) {
            // The diagonal kernel multiplies each half-run once (and skips
            // unit factors) — half the arithmetic of a dense 2×2 pass.
            FusedKernel::Passthrough(KernelOp::OneQDiag([m[0], m[3]]))
        } else {
            FusedKernel::OneQ(m)
        };
        let idx = self.out.len();
        self.tracker.touch(&[q], idx);
        self.out.push(FusedInst {
            qubits: vec![q],
            kernel,
        });
    }

    fn plan(mut self, insts: &'c [Instruction]) -> Vec<FusedInst<'c>> {
        for inst in insts {
            if inst.gate.is_directive() {
                continue;
            }
            if let Some(m) = inst.gate.matrix2x2() {
                let q = inst.qubits[0];
                self.pending[q] = Some(match self.pending[q] {
                    Some(prev) => mul_2x2(&m, &prev),
                    None => m,
                });
                continue;
            }
            let op = inst.gate.kernel().unwrap_or_else(|| {
                panic!("non-unitary instruction {} in fused gate stream", inst.gate)
            });
            self.plan_multi(inst, op);
        }
        for q in 0..self.pending.len() {
            self.flush(q);
        }
        self.out
    }

    /// Plans a multi-qubit gate: merge into an open dense block when the
    /// cost model approves, else open a fresh dense block (dense gates, and
    /// structured gates whose stuck pending neighbors make a dense fold
    /// cheaper), else pass through structured.
    fn plan_multi(&mut self, inst: &'c Instruction, op: KernelOp<'c>) {
        if let Membership::Join { block, new_qubits } = self.tracker.membership(&inst.qubits) {
            let cur_k = self.tracker.block_qubits(block).len();
            let union_k = cur_k + new_qubits.len();
            if self.merge_arity_ok(union_k) {
                let grow_delta =
                    self.profile.dense_sweep_cost(union_k) - self.profile.dense_sweep_cost(cur_k);
                if grow_delta < self.unmerged_cost(inst, &op) {
                    self.merge_into_block(block, &new_qubits, inst);
                    return;
                }
            }
        }
        let k = inst.qubits.len();
        if matches!(op, KernelOp::Dense(_)) && (k == 2 || k == 3) {
            self.open_dense_block(inst);
            return;
        }
        if k == 3
            && self.merge_arity_ok(3)
            && self.profile.dense_sweep_cost(3)
                < self.profile.sweep_cost(&op, 3) + self.flush_penalty(inst, &op)
        {
            // Toffoli-style gate with stuck pending neighbors: one 8×8
            // dense sweep beats the flushes plus the structured pass.
            self.open_dense_block(inst);
            return;
        }
        self.pass_structured(inst, op);
    }

    /// The sweeps a gate would cost if *not* merged into an open block: its
    /// own kernel pass plus the pending flushes it would force — unless the
    /// planner would fold gate and pendings into a fresh dense block
    /// anyway, which caps the cost at that block's sweep.
    fn unmerged_cost(&self, inst: &Instruction, op: &KernelOp<'_>) -> f64 {
        let k = inst.qubits.len();
        let penalty = self.flush_penalty(inst, op);
        let mut cost = self.profile.sweep_cost(op, k) + penalty;
        if penalty > 0.0 || matches!(op, KernelOp::Dense(_)) {
            if k == 2 {
                cost = cost.min(self.profile.dense_sweep_cost(2));
            }
            if k == 3 && self.merge_arity_ok(3) {
                cost = cost.min(self.profile.dense_sweep_cost(3));
            }
        }
        cost
    }

    /// The flush cost of the gate's stuck pending neighbors: products that
    /// can neither left-fold into an open block for free nor commute
    /// through the gate.
    fn flush_penalty(&self, inst: &Instruction, op: &KernelOp<'_>) -> f64 {
        let mut penalty = 0.0;
        for &q in &inst.qubits {
            let Some(m) = &self.pending[q] else { continue };
            if is_exact_identity(m)
                || self.tracker.owner(q).is_some()
                || (!matches!(op, KernelOp::Dense(_)) && commutes_through(op, &inst.qubits, q, m))
            {
                continue;
            }
            penalty += self.profile.flush_cost(is_diagonal(m));
        }
        penalty
    }

    /// Folds `inst` into the open dense block `block` (a
    /// [`Membership::Join`] the cost model approved): old-wire pendings
    /// left-fold first, the block matrix widens to the union if the gate
    /// brings new qubits (new-wire pendings commute with the old block and
    /// slot in under the gate), and finally the gate's matrix is
    /// left-multiplied at its bit positions — via [`mul_4x4`] with an
    /// orientation swap for same-pair merges, via [`embed`] in general. No
    /// new sweep is emitted.
    fn merge_into_block(&mut self, block: usize, new_qubits: &[usize], inst: &'c Instruction) {
        // Pendings on wires the block already owns precede the gate; they
        // left-fold into the block exactly as a flush would.
        for &q in &inst.qubits {
            if self.pending[q].is_some() && self.tracker.owner(q) == Some(block) {
                self.flush(q);
            }
        }
        let idx = self.tracker.block_pos(block);
        let cur_k = self.tracker.block_qubits(block).len();
        let union_k = cur_k + new_qubits.len();
        if !new_qubits.is_empty() {
            // Widen the block: old qubits keep their bit positions, new
            // qubits append. The old matrix embeds as identity ⊗ old.
            let old_bits: Vec<usize> = (0..cur_k).collect();
            let target = &mut self.out[idx];
            let FusedKernel::Dense(mk) = &mut target.kernel else {
                unreachable!("the tracker only indexes Dense ops");
            };
            *mk = embed(mk, &old_bits, union_k);
            for (i, &q) in new_qubits.iter().enumerate() {
                target.qubits.push(q);
                if let Some(p) = self.pending[q].take() {
                    // Accumulated before the gate, disjoint from the old
                    // block: left-multiply below the gate.
                    if !is_exact_identity(&p) {
                        *mk = embed_1q_in_dense(&p, cur_k + i, union_k).matmul(mk);
                    }
                }
            }
            self.tracker.extend(block, new_qubits);
        }
        let g = inst
            .gate
            .matrix()
            .expect("unitary gate in fused stream has a matrix");
        let positions: Vec<usize> = inst
            .qubits
            .iter()
            .map(|&q| {
                self.tracker
                    .block_qubits(block)
                    .iter()
                    .position(|&w| w == q)
                    .expect("gate qubit is in the merged block")
            })
            .collect();
        let target = &mut self.out[idx];
        let FusedKernel::Dense(mk) = &mut target.kernel else {
            unreachable!("the tracker only indexes Dense ops");
        };
        if union_k == 2 {
            let g4 = if positions == [0, 1] {
                g
            } else {
                swap_2q_orientation(&g)
            };
            *mk = mul_4x4(&g4, mk);
        } else {
            *mk = embed(&g, &positions, union_k).matmul(mk);
        }
    }

    /// Plans a structured (non-dense) gate of any arity. Pending neighbors
    /// are, in order of preference: left-folded into an open dense block
    /// (free — a planner-side product, no sweep), *commuted through* the
    /// gate when algebra allows (extending the run), relayed to the other
    /// qubit for `Swap`, or — for a 2q gate with any product still stuck —
    /// folded with the gate into one dense 4×4 (one sweep instead of a 1q
    /// pass plus the structured pass). Only stuck products on wider gates
    /// are flushed as their own pass (3q gates reach here only when the
    /// cost model rejected a dense fold).
    fn pass_structured(&mut self, inst: &'c Instruction, op: KernelOp<'c>) {
        // Free folds into open dense blocks first; a product folded there
        // no longer needs to commute with this gate.
        for &q in &inst.qubits {
            if self.pending[q].is_some() && self.tracker.owner(q).is_some() {
                self.flush(q);
            }
        }
        if matches!(op, KernelOp::Swap) {
            // P(a) · Swap ≡ Swap · P(b): pending products change qubit and
            // stay pending; the swap remains a pure copy pass.
            let (a, b) = (inst.qubits[0], inst.qubits[1]);
            self.pending.swap(a, b);
        } else {
            let keep: Vec<bool> = inst
                .qubits
                .iter()
                .map(|&q| match &self.pending[q] {
                    Some(m) => commutes_through(&op, &inst.qubits, q, m),
                    None => true,
                })
                .collect();
            if inst.qubits.len() == 2 && keep.iter().any(|k| !k) {
                // A side is stuck: absorbing it and the gate into one dense
                // 4×4 beats a 1q pass plus the structured pass.
                self.open_dense_block(inst);
                return;
            }
            for (&q, kept) in inst.qubits.iter().zip(&keep) {
                if !kept {
                    self.flush(q);
                }
            }
        }
        let idx = self.out.len();
        self.tracker.touch(&inst.qubits, idx);
        self.out.push(FusedInst {
            qubits: inst.qubits.clone(),
            kernel: FusedKernel::Passthrough(op),
        });
    }

    /// Opens a fresh dense block from a 2- or 3-qubit gate, folding the
    /// qubits' pending products into its matrix (right-multiplied: they act
    /// first; products on different bits commute). The block is recorded in
    /// the tracker as every qubit's left-fold/merge target.
    fn open_dense_block(&mut self, inst: &'c Instruction) {
        let k = inst.qubits.len();
        let mut mk = inst
            .gate
            .matrix()
            .expect("unitary gate in fused stream has a matrix");
        for (bit, &q) in inst.qubits.iter().enumerate() {
            if let Some(m) = self.pending[q].take() {
                if is_exact_identity(&m) {
                    continue;
                }
                let e = embed_1q_in_dense(&m, bit, k);
                mk = if k == 2 {
                    mul_4x4(&mk, &e)
                } else {
                    mk.matmul(&e)
                };
            }
        }
        let idx = self.out.len();
        self.tracker.open(&inst.qubits, idx);
        self.out.push(FusedInst {
            qubits: inst.qubits.clone(),
            kernel: FusedKernel::Dense(mk),
        });
    }
}

/// Is `m` diagonal (in exact arithmetic — diagonal gates produce exact
/// structural zeros)?
fn is_diagonal(m: &[C64; 4]) -> bool {
    m[1] == C64::ZERO && m[2] == C64::ZERO
}

/// Whether the 1q product `m` on qubit `q` commutes through the structured
/// op, letting it stay pending (and keep growing) instead of flushing:
///
/// * all-ones phases (`Cz`/`Cp`/`Mcz`) commute with any diagonal;
/// * a controlled-X commutes with diagonals on its controls and with
///   `αI + βX` matrices on its target;
/// * a controlled-1q (`Cu`) commutes with diagonals on its control.
fn commutes_through(op: &KernelOp<'_>, qubits: &[usize], q: usize, m: &[C64; 4]) -> bool {
    match op {
        KernelOp::PhaseAllOnes(_) => is_diagonal(m),
        KernelOp::ControlledX => {
            let target = *qubits.last().expect("controlled-X has qubits");
            if q == target {
                m[0] == m[3] && m[1] == m[2]
            } else {
                is_diagonal(m)
            }
        }
        KernelOp::ControlledOneQ(_) => q == qubits[0] && is_diagonal(m),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::unitary::{circuit_unitary_reference, embed};

    /// The dense local matrix of any kernel op (k = qubit count) — used to
    /// check fused plans without going through the engine.
    fn op_matrix(op: &KernelOp<'_>, k: usize) -> Matrix {
        let side = 1usize << k;
        match op {
            KernelOp::OneQ(m) => Matrix::from_rows(&[vec![m[0], m[1]], vec![m[2], m[3]]]),
            KernelOp::OneQDiag(d) => Matrix::diag(d),
            KernelOp::ControlledOneQ(u) => {
                let mut c = Matrix::identity(4);
                c[(1, 1)] = u[0];
                c[(1, 3)] = u[1];
                c[(3, 1)] = u[2];
                c[(3, 3)] = u[3];
                c
            }
            KernelOp::PhaseAllOnes(p) => {
                let mut m = Matrix::identity(side);
                m[(side - 1, side - 1)] = *p;
                m
            }
            KernelOp::ControlledX => {
                // Target = last qubit = local bit k-1; controls are the rest.
                let ctrl = (side >> 1) - 1;
                Matrix::from_fn(side, side, |r, c| {
                    let flip = if c & ctrl == ctrl { c ^ (side >> 1) } else { c };
                    if r == flip {
                        C64::ONE
                    } else {
                        C64::ZERO
                    }
                })
            }
            KernelOp::Swap => Matrix::from_fn(4, 4, |r, c| {
                let sw = ((c & 1) << 1) | (c >> 1);
                if r == sw {
                    C64::ONE
                } else {
                    C64::ZERO
                }
            }),
            KernelOp::Permutation(perm) => {
                let mut m = Matrix::zeros(side, side);
                for (l, &p) in perm.iter().enumerate() {
                    m[(p, l)] = C64::ONE;
                }
                m
            }
            KernelOp::Dense(d) => (*d).clone(),
        }
    }

    /// Applies a fused plan densely via embedding — an engine-independent
    /// check that planning alone preserves the unitary.
    fn plan_unitary(plan: &[FusedInst<'_>], n: usize) -> Matrix {
        let mut u = Matrix::identity(1 << n);
        for fi in plan {
            let m = op_matrix(&fi.op(), fi.qubits.len());
            u = embed(&m, &fi.qubits, n).matmul(&u);
        }
        u
    }

    #[test]
    fn one_qubit_run_collapses_to_single_op() {
        let mut c = Circuit::new(2);
        c.h(0).s(0).t(0).h(0);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 1);
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    #[test]
    fn interleaved_runs_collapse_per_qubit() {
        // Gates alternate qubits; each qubit's run still collapses.
        let mut c = Circuit::new(2);
        c.h(0).h(1).t(0).s(1).h(0).h(1);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 2);
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    #[test]
    fn one_q_gates_fold_into_two_qubit_block() {
        let mut c = Circuit::new(2);
        c.h(0).t(1).cx(0, 1);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 1, "h, t and cx must fuse into one 4×4");
        assert!(matches!(plan[0].kernel, FusedKernel::Dense(_)));
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    #[test]
    fn bare_structured_two_qubit_gates_pass_through() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).cz(1, 2).swap(0, 2);
        let plan = fuse_instructions(c.instructions(), 3);
        assert_eq!(plan.len(), 3);
        assert!(plan
            .iter()
            .all(|fi| matches!(fi.kernel, FusedKernel::Passthrough(_))));
    }

    #[test]
    fn exactly_self_inverse_run_vanishes() {
        // X·X and Z·Z are exact identities in f64 (0/±1 entries); a flushed
        // exact identity would waste a full sweep, so it is dropped. H·H is
        // *not* exact (1/√2 rounds) and must still be emitted.
        let mut c = Circuit::new(1);
        c.x(0).x(0).z(0).z(0);
        assert!(fuse_instructions(c.instructions(), 1).is_empty());
        let mut c = Circuit::new(1);
        c.h(0).h(0);
        assert_eq!(fuse_instructions(c.instructions(), 1).len(), 1);
    }

    #[test]
    fn three_qubit_gate_flushes_non_commuting_neighbors() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).ccx(0, 1, 2);
        let plan = fuse_instructions(c.instructions(), 3);
        // Two flushed Hadamards (H does not commute with a control) then
        // the passthrough Toffoli.
        assert_eq!(plan.len(), 3);
        assert!(matches!(plan[2].kernel, FusedKernel::Passthrough(_)));
        assert_eq!(plan[2].qubits, vec![0, 1, 2]);
    }

    #[test]
    fn diagonal_products_commute_through_controls() {
        // T on a CX control and S·T on a CZ qubit stay pending through the
        // 2q gates and keep accumulating; only one diagonal pass remains.
        let mut c = Circuit::new(2);
        c.t(0).cx(0, 1).s(0).cz(0, 1).t(0);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 3, "cx, cz and one merged diagonal run");
        assert!(matches!(plan[2].op(), KernelOp::OneQDiag(_)));
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    #[test]
    fn swap_relays_pending_products() {
        // H(0) commutes through Swap(0,1) as H(1), merging with the later
        // H(1)·X(1) run; the swap stays a pure passthrough.
        let mut c = Circuit::new(2);
        c.h(0).swap(0, 1).x(1).h(1);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 2, "swap plus one merged 1q run");
        assert!(matches!(plan[0].op(), KernelOp::Swap));
        assert_eq!(plan[1].qubits, vec![1]);
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    #[test]
    fn trailing_runs_left_fold_into_dense_blocks() {
        // cu makes a dense block on (0,1); the later H(1)·T(1) run folds
        // back into it instead of costing its own pass.
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1).t(1).h(1);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 1, "everything folds into the one 4×4");
        assert!(matches!(plan[0].kernel, FusedKernel::Dense(_)));
        assert!(plan_unitary(&plan, 2).approx_eq(&circuit_unitary_reference(&c), 1e-12));
    }

    /// A dense SU(4)-like block for merge tests: the unitary of a small
    /// random 2q circuit.
    fn dense_2q(seed: u64) -> crate::gate::Gate {
        use crate::testing::random_circuit;
        crate::gate::Gate::Unitary(crate::unitary::circuit_unitary(&random_circuit(2, 6, seed)))
    }

    /// A profile with expensive passes (the streaming state-vector regime),
    /// which enables pass-saving k=3 growth at any test size.
    fn streaming() -> FusionProfile {
        // Pinned costs: planner-shape assertions must not depend on this
        // host's microcalibration.
        FusionProfile {
            pass_cost: 6.0,
            dense3_weight: DENSE3_PENALTY,
        }
    }

    #[test]
    fn same_pair_dense_blocks_merge_in_either_orientation() {
        let mut c = Circuit::new(4);
        c.push(dense_2q(1), &[0, 1]);
        c.push(dense_2q(2), &[1, 0]); // reversed pair: orientation-swap path
        c.push(dense_2q(3), &[0, 1]);
        let plan = fuse_instructions(c.instructions(), 4);
        assert_eq!(plan.len(), 1, "same-pair blocks must merge into one 4×4");
        assert!(matches!(plan[0].kernel, FusedKernel::Dense(_)));
        assert!(plan_unitary(&plan, 4).approx_eq(&circuit_unitary_reference(&c), 1e-9));
    }

    #[test]
    fn structured_gates_absorb_into_open_blocks() {
        // CZ and CX confined to an open dense block's qubits fold into its
        // matrix instead of flushing it — no extra sweep.
        let mut c = Circuit::new(4);
        c.push(dense_2q(4), &[2, 1]);
        c.cz(1, 2).cx(2, 1).t(1).cx(1, 2);
        let plan = fuse_instructions(c.instructions(), 4);
        assert_eq!(plan.len(), 1, "everything lives on the block's pair");
        assert!(plan_unitary(&plan, 4).approx_eq(&circuit_unitary_reference(&c), 1e-9));
    }

    #[test]
    fn overlapping_dense_blocks_grow_to_8x8_under_streaming_profile() {
        let mut c = Circuit::new(5);
        c.push(dense_2q(5), &[0, 1]);
        c.push(dense_2q(6), &[1, 2]);
        c.push(dense_2q(7), &[0, 2]); // triangle: all three share ≤3 qubits
        let plan = fuse_instructions_with(c.instructions(), 5, streaming());
        assert_eq!(plan.len(), 1, "the triangle must consolidate to one 8×8");
        assert_eq!(plan[0].qubits.len(), 3);
        assert!(plan_unitary(&plan, 5).approx_eq(&circuit_unitary_reference(&c), 1e-9));
    }

    #[test]
    fn panel_profile_does_not_trade_passes_for_arithmetic() {
        // Under the panel profile passes are cheap: overlapping dense pairs
        // keep their 4×4 sweeps (growing to 8×8 would not reduce madds).
        let mut c = Circuit::new(5);
        c.push(dense_2q(8), &[0, 1]);
        c.push(dense_2q(9), &[1, 2]);
        let plan = fuse_instructions_with(c.instructions(), 5, FusionProfile::panels());
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|fi| fi.qubits.len() == 2));
    }

    #[test]
    fn small_registers_keep_pre_consolidation_behavior() {
        // n = 4 ≤ k+1 for k = 3: no growth to 8×8 even under the streaming
        // profile.
        let mut c = Circuit::new(4);
        c.push(dense_2q(10), &[0, 1]);
        c.push(dense_2q(11), &[1, 2]);
        let plan = fuse_instructions_with(c.instructions(), 4, streaming());
        assert_eq!(plan.len(), 2);
        assert!(plan.iter().all(|fi| fi.qubits.len() == 2));
        // And n = 3 ≤ k+1 for k = 2: same-pair merging is off too.
        let mut c = Circuit::new(3);
        c.push(dense_2q(12), &[0, 1]);
        c.push(dense_2q(13), &[0, 1]);
        let plan = fuse_instructions(c.instructions(), 3);
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn dressed_toffoli_folds_to_dense3_under_streaming_profile() {
        // Two stuck (non-commuting) 1q neighbors make one 8×8 sweep cheaper
        // than two flushes plus the structured Toffoli pass.
        let mut c = Circuit::new(5);
        c.h(0).h(1).ccx(0, 1, 2);
        let plan = fuse_instructions_with(c.instructions(), 5, streaming());
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].qubits, vec![0, 1, 2]);
        assert!(matches!(plan[0].kernel, FusedKernel::Dense(_)));
        assert!(plan_unitary(&plan, 5).approx_eq(&circuit_unitary_reference(&c), 1e-9));
        // A bare Toffoli stays structured: its kernel is far cheaper than a
        // dense 8×8.
        let mut c = Circuit::new(5);
        c.ccx(0, 1, 2);
        let plan = fuse_instructions_with(c.instructions(), 5, streaming());
        assert!(matches!(plan[0].kernel, FusedKernel::Passthrough(_)));
    }

    #[test]
    fn diagonals_still_commute_through_growing_blocks() {
        // A diagonal run on a CX control passes through and keeps growing
        // even when dense blocks are being consolidated around it.
        let mut c = Circuit::new(5);
        c.push(dense_2q(14), &[0, 1]);
        c.t(2).cx(2, 3).s(2);
        c.push(dense_2q(15), &[0, 1]);
        let plan = fuse_instructions(c.instructions(), 5);
        // One merged 4×4, the CX passthrough, one merged diagonal run.
        assert_eq!(plan.len(), 3);
        assert!(plan_unitary(&plan, 5).approx_eq(&circuit_unitary_reference(&c), 1e-9));
    }

    #[test]
    fn fused_plans_preserve_blocked_neighborhood_unitaries() {
        use crate::testing::blocked_neighborhood_circuit;
        for n in 2..=6usize {
            for seed in 0..4u64 {
                let c = blocked_neighborhood_circuit(n, 24, 5000 + seed * 17 + n as u64);
                let want = circuit_unitary_reference(&c);
                for profile in [FusionProfile::panels(), streaming()] {
                    let plan = fuse_instructions_with(c.instructions(), n, profile);
                    assert!(
                        plan_unitary(&plan, n).approx_eq(&want, 1e-9),
                        "fusion changed a blocked circuit on {n} qubits, seed {seed}, {profile:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn fused_plans_preserve_toffoli_chain_unitaries() {
        use crate::testing::toffoli_chain;
        for n in 3..=6usize {
            for seed in 0..3u64 {
                let c = toffoli_chain(n, seed);
                let want = circuit_unitary_reference(&c);
                for profile in [FusionProfile::panels(), streaming()] {
                    let plan = fuse_instructions_with(c.instructions(), n, profile);
                    assert!(
                        plan_unitary(&plan, n).approx_eq(&want, 1e-9),
                        "fusion changed a Toffoli chain on {n} qubits, seed {seed}, {profile:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn directives_are_dropped_and_do_not_break_runs() {
        let mut c = Circuit::new(2);
        c.h(0).barrier().t(0).annot_zero(1).h(0);
        let plan = fuse_instructions(c.instructions(), 2);
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn scheduler_clusters_disjoint_local_ops_and_preserves_unitary() {
        // Shard bit = 2: ops confined to qubits {0,1} are shard-local.
        let mut c = Circuit::new(5);
        c.push(dense_2q(20), &[2, 3]); // non-local
        c.push(dense_2q(21), &[0, 1]); // local, disjoint → bubbles left
        c.push(dense_2q(22), &[2, 4]); // non-local

        // Pinned cheap-pass profile: the host-calibrated statevector profile
        // can grow k=3 blocks here, which would change the plan shape this
        // test asserts on.
        let mut plan = fuse_instructions_with(c.instructions(), 5, FusionProfile::panels());
        assert_eq!(plan.len(), 3);
        let want = plan_unitary(&plan, 5);
        let groups = schedule_fused(&mut plan, 2);
        assert_eq!(plan[0].qubits, vec![0, 1], "local op must move to front");
        assert_eq!(
            groups,
            vec![
                ScheduleGroup {
                    start: 0,
                    len: 1,
                    local: true
                },
                ScheduleGroup {
                    start: 1,
                    len: 2,
                    local: false
                },
            ]
        );
        // Disjoint-support swaps commute exactly: the scheduled plan's
        // unitary matches the unscheduled one.
        assert!(plan_unitary(&plan, 5).approx_eq(&want, 1e-12));
    }

    #[test]
    fn scheduler_never_crosses_overlapping_supports() {
        let mut c = Circuit::new(5);
        c.push(dense_2q(23), &[1, 3]); // non-local (qubit 3 ≥ shard bit)
        c.push(dense_2q(24), &[0, 1]); // local but shares qubit 1: stays put
        let mut plan = fuse_instructions_with(c.instructions(), 5, FusionProfile::panels());
        assert_eq!(plan.len(), 2);
        let groups = schedule_fused(&mut plan, 2);
        assert_eq!(plan[0].qubits, vec![1, 3], "overlap must block the swap");
        assert!(!groups[0].local);
        assert!(groups[1].local);
    }

    #[test]
    fn scheduler_is_deterministic_and_groups_partition_the_plan() {
        let mut c = Circuit::new(6);
        c.push(dense_2q(25), &[3, 4]);
        c.push(dense_2q(26), &[0, 1]);
        c.push(dense_2q(27), &[2, 5]);
        c.push(dense_2q(28), &[0, 2]);
        let mut plan_a = fuse_instructions_with(c.instructions(), 6, FusionProfile::panels());
        let mut plan_b = fuse_instructions_with(c.instructions(), 6, FusionProfile::panels());
        let ga = schedule_fused(&mut plan_a, 3);
        let gb = schedule_fused(&mut plan_b, 3);
        assert_eq!(ga, gb, "same plan must yield the same schedule");
        let qa: Vec<_> = plan_a.iter().map(|fi| fi.qubits.clone()).collect();
        let qb: Vec<_> = plan_b.iter().map(|fi| fi.qubits.clone()).collect();
        assert_eq!(qa, qb, "same plan must yield the same op order");
        // Groups cover 0..len contiguously with alternating locality.
        let mut next = 0;
        for (i, g) in ga.iter().enumerate() {
            assert_eq!(g.start, next);
            assert!(g.len > 0);
            if i > 0 {
                assert_ne!(ga[i - 1].local, g.local, "maximal runs alternate");
            }
            next += g.len;
        }
        assert_eq!(next, plan_a.len());
    }

    #[test]
    fn fused_plan_preserves_random_circuit_unitaries() {
        use crate::testing::random_circuit;
        for n in 1..=4usize {
            for seed in 0..4u64 {
                let c = random_circuit(n, 20, 1000 + seed * 10 + n as u64);
                let plan = fuse_instructions(c.instructions(), n);
                let got = plan_unitary(&plan, n);
                let want = circuit_unitary_reference(&c);
                assert!(
                    got.approx_eq(&want, 1e-9),
                    "fusion changed the unitary on {n} qubits, seed {seed}"
                );
            }
        }
    }
}
