//! Quantum-circuit intermediate representation.
//!
//! This crate defines the gate set ([`Gate`]), the circuit container
//! ([`Circuit`]), a lightweight dependency-DAG view ([`dag::Dag`]) used by
//! transpiler passes, and unitary embedding utilities for equivalence
//! checking.
//!
//! Conventions match Qiskit, the framework the RPO paper builds on:
//!
//! * **Little-endian qubit ordering** — qubit 0 is the least-significant bit
//!   of a computational-basis index.
//! * Gate argument 0 is the least-significant *local* bit of the gate's own
//!   matrix; for controlled gates the controls come first and the target
//!   last (`cx(control, target)`).
//! * `u3(θ, φ, λ)` is the generic single-qubit gate
//!   `[[cos(θ/2), −e^{iλ}sin(θ/2)], [e^{iφ}sin(θ/2), e^{i(λ+φ)}cos(θ/2)]]`.
//!
//! The IR also carries the two instructions specific to the RPO paper: the
//! [`Gate::SwapZ`] reduced swap (two CNOTs, valid when one input is |0⟩,
//! Eq. 3) and the [`Gate::Annot`] state annotation (Section VI-C) that lets
//! programmers assert a qubit is in a known pure state.
//!
//! # Examples
//!
//! ```
//! use qc_circuit::Circuit;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//! assert_eq!(bell.gate_counts().total, 2);
//! assert_eq!(bell.depth(), 2);
//! ```

pub mod blocks;
pub mod circuit;
pub mod dag;
pub mod error;
pub mod fusion;
pub mod gate;
pub mod hash;
pub mod qasm;
pub mod serial;
pub mod testing;
pub mod unitary;

pub use blocks::{Block, BlockTracker, Membership};
pub use circuit::{Circuit, GateCounts, Instruction};
pub use dag::{
    conversion_counts, gate_class, instruction_classes, reset_conversion_counts, ChangeReport, Dag,
    DagEdit, WireSet,
};
pub use error::{BudgetKind, RpoError};
pub use fusion::{
    fuse_instructions, fuse_instructions_with, schedule_fused, FusedInst, FusionProfile,
    ScheduleGroup,
};
pub use gate::{BasisState, Gate};
pub use hash::{canonical_bytes, content_hash, fnv1a_128};
pub use serial::decode_circuit;
pub use unitary::{
    circuit_unitary, circuit_unitary_reference, circuit_unitary_unfused, circuits_equivalent,
    embed, UnitaryAccumulator,
};
