//! Deterministic random-circuit generation for oracle tests and benchmarks.
//!
//! Lives in the library (not a test module) so both the equivalence tests
//! in `qc-circuit`/`qc-sim` and the `kernels` criterion bench can draw the
//! same circuit distribution. The generator uses an internal SplitMix64
//! stream, keeping `qc-circuit` dependency-free.

use crate::circuit::Circuit;
use crate::gate::Gate;

/// A tiny deterministic PRNG (SplitMix64) for circuit sampling.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeds the stream.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform angle in `(-π, π)`.
    pub fn angle(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2.0 * std::f64::consts::PI
    }

    /// `k` distinct qubit indices below `n`, in random order (so multi-qubit
    /// gates exercise adjacent, non-adjacent and reversed orderings alike).
    pub fn distinct_qubits(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot draw {k} distinct qubits from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.below(n - i);
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

/// Builds a random `num_gates`-gate unitary circuit on `num_qubits` qubits
/// covering the full unitary gate set (no reset/measure/directives), with
/// uniformly random qubit assignments — including non-adjacent and reversed
/// orderings — and random angles. Deterministic per seed.
///
/// Multi-qubit gate kinds requiring more qubits than available are skipped
/// in favor of single-qubit kinds, so any `num_qubits ≥ 1` works.
pub fn random_circuit(num_qubits: usize, num_gates: usize, seed: u64) -> Circuit {
    let mut rng = SplitMix64::new(seed);
    let mut c = Circuit::new(num_qubits);
    let mut added = 0;
    while added < num_gates {
        let kind = rng.below(25);
        let need = match kind {
            0..=14 => 1,
            15..=19 => 2,
            20..=22 => 3,
            _ => 4,
        };
        if need > num_qubits {
            continue;
        }
        let q = rng.distinct_qubits(num_qubits, need);
        match kind {
            0 => c.x(q[0]),
            1 => c.y(q[0]),
            2 => c.z(q[0]),
            3 => c.h(q[0]),
            4 => c.s(q[0]),
            5 => c.sdg(q[0]),
            6 => c.t(q[0]),
            7 => c.tdg(q[0]),
            8 => c.rx(rng.angle(), q[0]),
            9 => c.ry(rng.angle(), q[0]),
            10 => c.rz(rng.angle(), q[0]),
            11 => c.u1(rng.angle(), q[0]),
            12 => c.u2(rng.angle(), rng.angle(), q[0]),
            13 => c.u3(rng.angle(), rng.angle(), rng.angle(), q[0]),
            14 => c.id(q[0]),
            15 => c.cx(q[0], q[1]),
            16 => c.cz(q[0], q[1]),
            17 => c.cp(rng.angle(), q[0], q[1]),
            18 => c.swap(q[0], q[1]),
            19 => c.swapz(q[0], q[1]),
            20 => c.ccx(q[0], q[1], q[2]),
            21 => c.cswap(q[0], q[1], q[2]),
            22 => c.push(
                Gate::Cu(
                    Gate::U3(rng.angle(), rng.angle(), rng.angle())
                        .matrix()
                        .unwrap(),
                ),
                &q[..2],
            ),
            23 => c.mcx(&q[..3], q[3]),
            _ => c.mcz(&q[..3], q[3]),
        };
        added += 1;
    }
    c
}

/// Builds a Toffoli chain with single-qubit dressing on the operands — the
/// 3q-neighborhood shape the fusion planner's k≤3 consolidation targets
/// (and the `statevector_toffoli_chain_14q` bench measures). Deterministic
/// per seed.
///
/// # Panics
///
/// Panics if `num_qubits < 3`.
pub fn toffoli_chain(num_qubits: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 3, "a Toffoli chain needs at least 3 qubits");
    let mut rng = SplitMix64::new(seed);
    let mut c = Circuit::new(num_qubits);
    for i in 0..num_qubits - 2 {
        c.h(i);
        c.ry(rng.angle(), i + 1);
        c.ccx(i, i + 1, i + 2);
        c.t(i + 2);
    }
    c
}

/// Builds a circuit rich in ≤3-qubit dense neighborhoods: dense two-qubit
/// blocks on overlapping pairs (QV-style), Toffolis, and interleaved
/// diagonal/1q dressing — the distribution the in-stream block
/// consolidation rules are exercised on. Deterministic per seed.
///
/// # Panics
///
/// Panics if `num_qubits < 2`.
pub fn blocked_neighborhood_circuit(num_qubits: usize, num_gates: usize, seed: u64) -> Circuit {
    assert!(num_qubits >= 2, "blocked circuits need at least 2 qubits");
    let mut rng = SplitMix64::new(seed);
    let mut c = Circuit::new(num_qubits);
    let mut added = 0;
    while added < num_gates {
        match rng.below(8) {
            // Dense 2q block (a unitary of a random 2q circuit) on a random
            // pair — overlapping pairs are what grows k≤3 blocks.
            0..=2 => {
                let q = rng.distinct_qubits(num_qubits, 2);
                let u = crate::unitary::circuit_unitary(&random_circuit(2, 6, rng.next_u64()));
                c.push(Gate::Unitary(u), &q);
            }
            3 if num_qubits >= 3 => {
                let q = rng.distinct_qubits(num_qubits, 3);
                c.ccx(q[0], q[1], q[2]);
            }
            4 => {
                let q = rng.distinct_qubits(num_qubits, 1)[0];
                match rng.below(3) {
                    0 => c.t(q),
                    1 => c.s(q),
                    _ => c.rz(rng.angle(), q),
                };
            }
            5 => {
                let q = rng.distinct_qubits(num_qubits, 1)[0];
                match rng.below(3) {
                    0 => c.h(q),
                    1 => c.ry(rng.angle(), q),
                    _ => c.x(q),
                };
            }
            6 => {
                let q = rng.distinct_qubits(num_qubits, 2);
                match rng.below(3) {
                    0 => c.cx(q[0], q[1]),
                    1 => c.cz(q[0], q[1]),
                    _ => c.swap(q[0], q[1]),
                };
            }
            _ => {
                let q = rng.distinct_qubits(num_qubits, 2);
                c.cp(rng.angle(), q[0], q[1]);
            }
        }
        added += 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = random_circuit(4, 30, 7);
        let b = random_circuit(4, 30, 7);
        assert_eq!(a.instructions(), b.instructions());
        let c = random_circuit(4, 30, 8);
        assert_ne!(a.instructions(), c.instructions());
    }

    #[test]
    fn requested_gate_count_and_qubit_bounds() {
        for n in 1..5 {
            let c = random_circuit(n, 40, n as u64);
            assert_eq!(c.len(), 40);
            for inst in c.instructions() {
                assert!(inst.qubits.iter().all(|&q| q < n));
                assert!(inst.gate.is_unitary_gate());
            }
        }
    }
}
