//! Shared streaming detection of mergeable gate neighborhoods ("blocks").
//!
//! Two consumers need the same question answered while walking a gate
//! stream in program order: *can this gate be folded into an earlier block,
//! or must it start (or break) one?*
//!
//! * The **fusion planner** ([`crate::fusion`]) grows dense k≤3 kernel
//!   blocks in-stream: a gate joins the most recent dense block when every
//!   qubit it shares with the block is unperturbed since the block was
//!   emitted and every qubit it adds is untouched since then.
//! * **`ConsolidateBlocks`** (and QPO's block rewrite in `qc-core`)
//!   collects maximal runs of gates confined to one qubit pair for KAK
//!   re-synthesis — the same membership test with `max_arity = 2`, over
//!   original instruction indices instead of emitted kernel ops.
//!
//! [`BlockTracker`] is that shared membership machine. It knows nothing
//! about matrices or cost models: callers ask for [`BlockTracker::membership`],
//! decide (the planner applies its cost model, the collector its anchoring
//! rule), and report back with [`BlockTracker::open`],
//! [`BlockTracker::extend`] or [`BlockTracker::touch`].
//!
//! # Soundness
//!
//! The tracker maintains, per qubit `q`:
//!
//! * `last_block[q]` — the open block that owns `q`, meaning **no recorded
//!   action after that block's position touches `q`**;
//! * `last_touch[q]` — the stream position of the last recorded action on
//!   `q` (block-absorbed gates count at the *block's* position, since that
//!   is where they land in the rewritten stream).
//!
//! A gate may fold into block `B` at position `p` exactly when nothing
//! recorded after `p` touches any of its qubits — then it commutes (by
//! qubit disjointness) with everything between `p` and the present, so
//! relocating it to `p` preserves the operator. [`BlockTracker::membership`]
//! checks precisely that invariant.

/// A collected block over original instruction indices: the product of
/// [`crate::Dag::collect_blocks`], consumed by `ConsolidateBlocks` and QPO.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// The distinct qubits the block spans, in first-claimed order.
    pub qubits: Vec<usize>,
    /// Instruction indices in program order. At least one multi-qubit gate.
    pub nodes: Vec<usize>,
}

/// The answer to "where does a gate on these qubits belong?".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Membership {
    /// The gate can fold into open block `block`; `new_qubits` lists the
    /// gate qubits the block does not yet span (empty for a pure absorb).
    /// The caller must confirm with [`BlockTracker::extend`] (when growing)
    /// or decline with [`BlockTracker::touch`]/[`BlockTracker::open`].
    Join {
        /// Identifier returned by [`BlockTracker::open`].
        block: usize,
        /// Gate qubits not yet spanned by the block, in gate order.
        new_qubits: Vec<usize>,
    },
    /// No open block can absorb the gate.
    Outside,
}

/// Streaming block-membership tracker (see the module docs).
#[derive(Clone, Debug)]
pub struct BlockTracker {
    max_arity: usize,
    /// Whether losing one wire releases the whole block (see
    /// [`BlockTracker::sealing`]).
    seal_on_touch: bool,
    /// Per block: spanned qubits and the stream position it was opened at.
    blocks: Vec<(Vec<usize>, usize)>,
    /// Per qubit: the open block owning it (`None` once anything else
    /// touches the qubit).
    last_block: Vec<Option<usize>>,
    /// Per qubit: position of the last recorded action.
    last_touch: Vec<Option<usize>>,
}

impl BlockTracker {
    /// A per-wire tracker for `num_qubits` wires growing blocks up to
    /// `max_arity` qubits: a block that loses one wire keeps accepting
    /// gates on its remaining wires. Sound for consumers that fold joined
    /// gates back **at the block's stream position** (the fusion planner,
    /// which back-patches the emitted kernel op's matrix).
    pub fn new(num_qubits: usize, max_arity: usize) -> Self {
        BlockTracker {
            max_arity,
            seal_on_touch: false,
            blocks: Vec::new(),
            last_block: vec![None; num_qubits],
            last_touch: vec![None; num_qubits],
        }
    }

    /// A sealing tracker: the first outside action on **any** wire of a
    /// block releases the whole block. Required by consumers that anchor a
    /// block's rewrite at its *last* node index (`ConsolidateBlocks`, QPO)
    /// — a gate joining on a surviving wire after another wire was stolen
    /// would drag the anchor past the stealing gate and reorder the
    /// circuit.
    pub fn sealing(num_qubits: usize, max_arity: usize) -> Self {
        BlockTracker {
            seal_on_touch: true,
            ..BlockTracker::new(num_qubits, max_arity)
        }
    }

    /// Releases qubit `q`'s block ownership — wholly (every wire of the
    /// owning block) under sealing mode, else just `q`.
    fn release(&mut self, q: usize) {
        let Some(owner) = self.last_block[q] else {
            return;
        };
        if self.seal_on_touch {
            for i in 0..self.blocks[owner].0.len() {
                let w = self.blocks[owner].0[i];
                if self.last_block[w] == Some(owner) {
                    self.last_block[w] = None;
                }
            }
        } else {
            self.last_block[q] = None;
        }
    }

    /// Whether a gate on `qubits` can fold into an open block. Read-only:
    /// the caller decides and then records its decision.
    pub fn membership(&self, qubits: &[usize]) -> Membership {
        // Candidate: the most recently opened block owning any gate qubit.
        let Some(cand) = qubits.iter().filter_map(|&q| self.last_block[q]).max() else {
            return Membership::Outside;
        };
        let (block_qubits, pos) = &self.blocks[cand];
        let mut new_qubits = Vec::new();
        for &q in qubits {
            if block_qubits.contains(&q) {
                if self.last_block[q] != Some(cand) {
                    // The block once spanned q but something stole it since.
                    return Membership::Outside;
                }
            } else if self.last_touch[q].is_some_and(|t| t >= *pos) {
                // q was acted on after the block's position: folding the
                // gate back would reorder it across that action.
                return Membership::Outside;
            } else {
                new_qubits.push(q);
            }
        }
        if block_qubits.len() + new_qubits.len() > self.max_arity {
            return Membership::Outside;
        }
        Membership::Join {
            block: cand,
            new_qubits,
        }
    }

    /// Opens a new block on `qubits` at stream position `pos`, claiming its
    /// wires. Returns the block id used by [`Membership::Join`].
    pub fn open(&mut self, qubits: &[usize], pos: usize) -> usize {
        let id = self.blocks.len();
        for &q in qubits {
            self.release(q);
        }
        for &q in qubits {
            self.last_block[q] = Some(id);
            self.last_touch[q] = Some(pos);
        }
        self.blocks.push((qubits.to_vec(), pos));
        id
    }

    /// Grows `block` by `new_qubits` (from a [`Membership::Join`]); the new
    /// wires are claimed at the block's original position, since that is
    /// where their gates now land.
    pub fn extend(&mut self, block: usize, new_qubits: &[usize]) {
        let pos = self.blocks[block].1;
        for &q in new_qubits {
            debug_assert!(
                !self.blocks[block].0.contains(&q),
                "qubit {q} already in block"
            );
            self.release(q);
            self.blocks[block].0.push(q);
            self.last_block[q] = Some(block);
            self.last_touch[q] = Some(pos);
        }
        debug_assert!(self.blocks[block].0.len() <= self.max_arity);
    }

    /// Records a non-foldable action on `qubits` at position `pos`,
    /// releasing any block ownership of those wires.
    pub fn touch(&mut self, qubits: &[usize], pos: usize) {
        for &q in qubits {
            self.release(q);
            self.last_block[q] = None;
            self.last_touch[q] = Some(pos);
        }
    }

    /// The qubits spanned by `block`, in first-claimed order (the block's
    /// local bit order for matrix-building callers).
    pub fn block_qubits(&self, block: usize) -> &[usize] {
        &self.blocks[block].0
    }

    /// The stream position `block` was opened at.
    pub fn block_pos(&self, block: usize) -> usize {
        self.blocks[block].1
    }

    /// The open block currently owning qubit `q`, if any.
    pub fn owner(&self, q: usize) -> Option<usize> {
        self.last_block[q]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_pair_joins_either_orientation() {
        let mut t = BlockTracker::new(3, 2);
        let b = t.open(&[0, 1], 0);
        assert_eq!(
            t.membership(&[1, 0]),
            Membership::Join {
                block: b,
                new_qubits: vec![]
            }
        );
        assert_eq!(
            t.membership(&[0, 1]),
            Membership::Join {
                block: b,
                new_qubits: vec![]
            }
        );
    }

    #[test]
    fn touch_releases_ownership() {
        let mut t = BlockTracker::new(3, 2);
        t.open(&[0, 1], 0);
        t.touch(&[1, 2], 1);
        assert_eq!(t.membership(&[0, 1]), Membership::Outside);
        // Qubit 0 alone is still owned.
        assert!(matches!(t.membership(&[0]), Membership::Join { .. }));
    }

    #[test]
    fn growth_requires_untouched_new_wire() {
        let mut t = BlockTracker::new(4, 3);
        let b = t.open(&[0, 1], 5);
        // Qubit 2 untouched: may grow the block.
        assert_eq!(
            t.membership(&[1, 2]),
            Membership::Join {
                block: b,
                new_qubits: vec![2]
            }
        );
        // Qubit 3 touched *after* the block opened: may not.
        t.touch(&[3], 6);
        assert_eq!(t.membership(&[1, 3]), Membership::Outside);
        // Touched before the block opened is fine.
        let mut t = BlockTracker::new(4, 3);
        t.touch(&[3], 2);
        let b = t.open(&[0, 1], 5);
        assert_eq!(
            t.membership(&[1, 3]),
            Membership::Join {
                block: b,
                new_qubits: vec![3]
            }
        );
    }

    #[test]
    fn sealing_releases_whole_block_on_any_wire_loss() {
        let mut t = BlockTracker::sealing(4, 2);
        t.open(&[0, 2], 0);
        // A new block stealing wire 0 seals the (0,2) block entirely: even
        // the untouched wire 2 no longer accepts joins.
        t.open(&[0, 3], 1);
        assert_eq!(t.membership(&[2]), Membership::Outside);
        // Per-wire mode keeps wire 2 open in the same scenario.
        let mut t = BlockTracker::new(4, 2);
        let b = t.open(&[0, 2], 0);
        t.open(&[0, 3], 1);
        assert_eq!(
            t.membership(&[2]),
            Membership::Join {
                block: b,
                new_qubits: vec![]
            }
        );
    }

    #[test]
    fn arity_cap_stops_growth() {
        let mut t = BlockTracker::new(4, 3);
        let b = t.open(&[0, 1], 0);
        t.extend(b, &[2]);
        assert_eq!(t.block_qubits(b), &[0, 1, 2]);
        assert_eq!(t.membership(&[2, 3]), Membership::Outside);
        assert!(matches!(t.membership(&[2, 0]), Membership::Join { .. }));
    }

    #[test]
    fn newer_block_wins_between_two_owners() {
        let mut t = BlockTracker::new(4, 3);
        t.open(&[0, 1], 0);
        let b2 = t.open(&[2, 3], 1);
        // Qubit 1 belongs to the older block and is untouched since before
        // the newer one opened: it may migrate into the newer block.
        assert_eq!(
            t.membership(&[1, 2]),
            Membership::Join {
                block: b2,
                new_qubits: vec![1]
            }
        );
        t.extend(b2, &[1]);
        // The older block no longer owns qubit 1.
        assert_eq!(t.membership(&[0, 1]), Membership::Outside);
    }
}
