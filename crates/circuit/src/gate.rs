//! The gate set and per-gate metadata (arity, matrices, inverses, names).

use qc_math::{KernelOp, Matrix, C64};
use std::f64::consts::{FRAC_1_SQRT_2, FRAC_PI_2, PI};
use std::fmt;

/// SWAPZ as a basis-state permutation: `cx(q1→q0)` then `cx(q0→q1)` maps
/// `|b₁b₀⟩` to `|b₀, b₀⊕b₁⟩`, i.e. local state `l → SWAPZ_PERM[l]`.
static SWAPZ_PERM: [usize; 4] = [0, 3, 1, 2];

/// Fredkin as a permutation: control is local bit 0; states 3 = `011` and
/// 5 = `101` exchange, everything else is fixed.
static CSWAP_PERM: [usize; 8] = [0, 1, 2, 5, 4, 3, 6, 7];

/// The six single-qubit basis states tracked by the paper's basis-state
/// analysis (Section VI-A): the Z-basis (|0⟩, |1⟩), X-basis (|+⟩, |−⟩) and
/// Y-basis (|L⟩, |R⟩) eigenstates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BasisState {
    /// |0⟩, the ground state.
    Zero,
    /// |1⟩.
    One,
    /// |+⟩ = (|0⟩+|1⟩)/√2.
    Plus,
    /// |−⟩ = (|0⟩−|1⟩)/√2.
    Minus,
    /// |L⟩ = (|0⟩+i|1⟩)/√2 (also written |+i⟩).
    Left,
    /// |R⟩ = (|0⟩−i|1⟩)/√2 (also written |−i⟩).
    Right,
}

impl BasisState {
    /// The state vector of this basis state.
    pub fn state_vector(self) -> [C64; 2] {
        let r = FRAC_1_SQRT_2;
        match self {
            BasisState::Zero => [C64::ONE, C64::ZERO],
            BasisState::One => [C64::ZERO, C64::ONE],
            BasisState::Plus => [C64::real(r), C64::real(r)],
            BasisState::Minus => [C64::real(r), C64::real(-r)],
            BasisState::Left => [C64::real(r), C64::new(0.0, r)],
            BasisState::Right => [C64::real(r), C64::new(0.0, -r)],
        }
    }

    /// The Bloch-sphere parameters `(θ, φ)` such that this state equals
    /// `cos(θ/2)|0⟩ + e^{iφ} sin(θ/2)|1⟩`; the representation used by the
    /// paper's pure-state analysis and `ANNOT(θ, φ)`.
    pub fn bloch_angles(self) -> (f64, f64) {
        match self {
            BasisState::Zero => (0.0, 0.0),
            BasisState::One => (PI, 0.0),
            BasisState::Plus => (FRAC_PI_2, 0.0),
            BasisState::Minus => (FRAC_PI_2, PI),
            BasisState::Left => (FRAC_PI_2, FRAC_PI_2),
            BasisState::Right => (FRAC_PI_2, -FRAC_PI_2),
        }
    }

    /// Identifies which basis state (if any) the Bloch angles `(θ, φ)`
    /// describe, within tolerance `eps`.
    pub fn from_bloch_angles(theta: f64, phi: f64, eps: f64) -> Option<BasisState> {
        let all = [
            BasisState::Zero,
            BasisState::One,
            BasisState::Plus,
            BasisState::Minus,
            BasisState::Left,
            BasisState::Right,
        ];
        // Compare state vectors rather than raw angles: φ is meaningless at
        // the poles (θ ∈ {0, π}) and φ is 2π-periodic.
        let a = C64::real((theta / 2.0).cos());
        let b = C64::cis(phi).scale((theta / 2.0).sin());
        all.into_iter().find(|s| {
            let [sa, sb] = s.state_vector();
            // Equality up to global phase.
            let ip = sa.conj() * a + sb.conj() * b;
            (ip.norm() - 1.0).abs() < eps
        })
    }
}

/// A quantum gate or circuit instruction.
///
/// Gates carry their parameters inline; arity is fixed per variant except
/// the multi-controlled family and [`Gate::Unitary`]. See the crate docs for
/// the qubit-ordering convention.
#[derive(Clone, Debug, PartialEq)]
pub enum Gate {
    /// Identity (single qubit).
    I,
    /// Pauli X (NOT).
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// S†.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T†.
    Tdg,
    /// X-rotation by θ.
    Rx(f64),
    /// Y-rotation by θ.
    Ry(f64),
    /// Z-rotation by θ (traceless convention, `diag(e^{−iθ/2}, e^{iθ/2})`).
    Rz(f64),
    /// Phase gate u1(λ) = diag(1, e^{iλ}).
    U1(f64),
    /// u2(φ, λ) = u3(π/2, φ, λ).
    U2(f64, f64),
    /// The generic single-qubit gate u3(θ, φ, λ).
    U3(f64, f64, f64),
    /// Controlled-NOT: `(control, target)`.
    Cx,
    /// Controlled-Z (symmetric).
    Cz,
    /// Controlled phase: `diag(1,1,1,e^{iλ})` (symmetric).
    Cp(f64),
    /// SWAP.
    Swap,
    /// The paper's reduced 2-CNOT swap (Eq. 3). `swapz(qz, other)` swaps the
    /// two qubits **only when `qz` is in |0⟩**; otherwise its unitary is
    /// `cx(other→qz)·cx(qz→other)` which is *not* a SWAP. The QBO pass
    /// verifies the precondition and decomposes invalid SWAPZ gates.
    SwapZ,
    /// Toffoli: `(control, control, target)`.
    Ccx,
    /// Fredkin (controlled-SWAP): `(control, target, target)`.
    Cswap,
    /// Multi-controlled NOT with `n` controls: `(c₁, …, cₙ, target)`.
    Mcx(usize),
    /// Multi-controlled Z with `n` controls: `(c₁, …, cₙ, target)`;
    /// symmetric in all qubits.
    Mcz(usize),
    /// Controlled single-qubit unitary: `(control, target)`.
    Cu(Matrix),
    /// An arbitrary k-qubit unitary block (used by block-consolidation
    /// passes). The matrix dimension must be a power of two.
    Unitary(Matrix),
    /// Non-unitary reset to |0⟩ (the only non-gate instruction the paper
    /// considers).
    Reset,
    /// Computational-basis measurement of one qubit.
    Measure,
    /// Synchronization barrier across its qubits (no-op semantics).
    Barrier(usize),
    /// The paper's `ANNOT(θ, φ)` pure-state annotation (Section VI-C): an
    /// assertion, trusted by the state analyses, that the qubit is in the
    /// pure state `cos(θ/2)|0⟩ + e^{iφ}sin(θ/2)|1⟩` at this point. Acts as
    /// the identity during simulation.
    Annot(f64, f64),
}

impl Gate {
    /// Number of qubits this gate acts on.
    pub fn num_qubits(&self) -> usize {
        match self {
            Gate::I
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::H
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::U1(_)
            | Gate::U2(_, _)
            | Gate::U3(_, _, _)
            | Gate::Reset
            | Gate::Measure
            | Gate::Annot(_, _) => 1,
            Gate::Cx | Gate::Cz | Gate::Cp(_) | Gate::Swap | Gate::SwapZ | Gate::Cu(_) => 2,
            Gate::Ccx | Gate::Cswap => 3,
            Gate::Mcx(n) | Gate::Mcz(n) => n + 1,
            Gate::Barrier(n) => *n,
            Gate::Unitary(m) => {
                let dim = m.rows();
                debug_assert!(dim.is_power_of_two());
                dim.trailing_zeros() as usize
            }
        }
    }

    /// The canonical lowercase name (Qiskit-style) of the gate.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "id",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::U1(_) => "u1",
            Gate::U2(_, _) => "u2",
            Gate::U3(_, _, _) => "u3",
            Gate::Cx => "cx",
            Gate::Cz => "cz",
            Gate::Cp(_) => "cp",
            Gate::Swap => "swap",
            Gate::SwapZ => "swapz",
            Gate::Ccx => "ccx",
            Gate::Cswap => "cswap",
            Gate::Mcx(_) => "mcx",
            Gate::Mcz(_) => "mcz",
            Gate::Cu(_) => "cu",
            Gate::Unitary(_) => "unitary",
            Gate::Reset => "reset",
            Gate::Measure => "measure",
            Gate::Barrier(_) => "barrier",
            Gate::Annot(_, _) => "annot",
        }
    }

    /// Returns `true` for unitary gates (everything except reset, measure,
    /// barriers and annotations).
    pub fn is_unitary_gate(&self) -> bool {
        !matches!(
            self,
            Gate::Reset | Gate::Measure | Gate::Barrier(_) | Gate::Annot(_, _)
        )
    }

    /// Returns `true` for directives that have no physical effect (barriers
    /// and annotations); these are excluded from gate counts and depth.
    pub fn is_directive(&self) -> bool {
        matches!(self, Gate::Barrier(_) | Gate::Annot(_, _))
    }

    /// The gate's unitary matrix in the local ordering described in the
    /// crate docs, or `None` for non-unitary instructions and directives.
    pub fn matrix(&self) -> Option<Matrix> {
        let r = FRAC_1_SQRT_2;
        let m = match self {
            Gate::I => Matrix::identity(2),
            Gate::X => Matrix::from_rows(&[vec![C64::ZERO, C64::ONE], vec![C64::ONE, C64::ZERO]]),
            Gate::Y => Matrix::from_rows(&[vec![C64::ZERO, -C64::I], vec![C64::I, C64::ZERO]]),
            Gate::Z => Matrix::diag(&[C64::ONE, C64::real(-1.0)]),
            Gate::H => Matrix::from_rows(&[
                vec![C64::real(r), C64::real(r)],
                vec![C64::real(r), C64::real(-r)],
            ]),
            Gate::S => Matrix::diag(&[C64::ONE, C64::I]),
            Gate::Sdg => Matrix::diag(&[C64::ONE, -C64::I]),
            Gate::T => Matrix::diag(&[C64::ONE, C64::cis(PI / 4.0)]),
            Gate::Tdg => Matrix::diag(&[C64::ONE, C64::cis(-PI / 4.0)]),
            Gate::Rx(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::new(0.0, -(t / 2.0).sin());
                Matrix::from_rows(&[vec![c, s], vec![s, c]])
            }
            Gate::Ry(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::real((t / 2.0).sin());
                Matrix::from_rows(&[vec![c, -s], vec![s, c]])
            }
            Gate::Rz(t) => Matrix::diag(&[C64::cis(-t / 2.0), C64::cis(t / 2.0)]),
            Gate::U1(l) => Matrix::diag(&[C64::ONE, C64::cis(*l)]),
            Gate::U2(phi, lam) => u3_matrix(FRAC_PI_2, *phi, *lam),
            Gate::U3(t, phi, lam) => u3_matrix(*t, *phi, *lam),
            Gate::Cx => {
                // control = local bit 0, target = local bit 1 (little-endian)
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = C64::ONE; // |c=0,t=0⟩
                m[(2, 2)] = C64::ONE; // |c=0,t=1⟩
                m[(3, 1)] = C64::ONE; // |c=1,t=0⟩ → |c=1,t=1⟩
                m[(1, 3)] = C64::ONE;
                m
            }
            Gate::Cz => Matrix::diag(&[C64::ONE, C64::ONE, C64::ONE, C64::real(-1.0)]),
            Gate::Cp(l) => Matrix::diag(&[C64::ONE, C64::ONE, C64::ONE, C64::cis(*l)]),
            Gate::Swap => {
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = C64::ONE;
                m[(3, 3)] = C64::ONE;
                m[(1, 2)] = C64::ONE;
                m[(2, 1)] = C64::ONE;
                m
            }
            Gate::SwapZ => {
                // cx(q1→q0) then cx(q0→q1): matrix = CX₀₁ · CX₁₀ where
                // CX₁₀ has control bit 1, target bit 0.
                let cx01 = Gate::Cx.matrix().expect("cx has a matrix"); // control bit0
                let cx10 = {
                    let mut m = Matrix::zeros(4, 4);
                    m[(0, 0)] = C64::ONE;
                    m[(1, 1)] = C64::ONE;
                    m[(3, 2)] = C64::ONE;
                    m[(2, 3)] = C64::ONE;
                    m
                };
                // Time order: first cx(q1→q0) = cx10, then cx(q0→q1) = cx01.
                cx01.matmul(&cx10)
            }
            Gate::Ccx => {
                // controls bits 0,1; target bit 2.
                let mut m = Matrix::identity(8);
                m[(3, 3)] = C64::ZERO;
                m[(7, 7)] = C64::ZERO;
                m[(3, 7)] = C64::ONE;
                m[(7, 3)] = C64::ONE;
                m
            }
            Gate::Cswap => {
                // control bit 0; swap bits 1 and 2 when control set:
                // |c=1, t₁=a, t₂=b⟩ → |c=1, t₁=b, t₂=a⟩; indices 3=011, 5=101.
                let mut m = Matrix::identity(8);
                m[(3, 3)] = C64::ZERO;
                m[(5, 5)] = C64::ZERO;
                m[(3, 5)] = C64::ONE;
                m[(5, 3)] = C64::ONE;
                m
            }
            Gate::Mcx(n) => {
                let dim = 1 << (n + 1);
                let mut m = Matrix::identity(dim);
                // All controls (bits 0..n) set: indices with low n bits = 1.
                let ctrl_mask = (1 << n) - 1;
                let a = ctrl_mask; // target bit (bit n) = 0
                let b = ctrl_mask | (1 << n); // target bit = 1
                m[(a, a)] = C64::ZERO;
                m[(b, b)] = C64::ZERO;
                m[(a, b)] = C64::ONE;
                m[(b, a)] = C64::ONE;
                m
            }
            Gate::Mcz(n) => {
                let dim = 1 << (n + 1);
                let mut m = Matrix::identity(dim);
                m[(dim - 1, dim - 1)] = C64::real(-1.0);
                m
            }
            Gate::Cu(u) => {
                // control bit 0, target bit 1.
                let mut m = Matrix::identity(4);
                m[(1, 1)] = u[(0, 0)];
                m[(1, 3)] = u[(0, 1)];
                m[(3, 1)] = u[(1, 0)];
                m[(3, 3)] = u[(1, 1)];
                m
            }
            Gate::Unitary(u) => u.clone(),
            Gate::Reset | Gate::Measure | Gate::Barrier(_) | Gate::Annot(_, _) => return None,
        };
        Some(m)
    }

    /// The gate's action classified for the shared kernel engine
    /// ([`qc_math::KernelEngine`]), in local qubit ordering, or `None` for
    /// non-unitary instructions and directives.
    ///
    /// Unlike [`Gate::matrix`], this never heap-allocates: structured gates
    /// map to stack-sized kernel descriptors, permutation gates reference
    /// static tables, and `Unitary` blocks are borrowed. It is the
    /// per-instruction fast path for both the state-vector simulator and
    /// circuit-unitary construction.
    pub fn kernel(&self) -> Option<KernelOp<'_>> {
        let r = FRAC_1_SQRT_2;
        let op = match self {
            Gate::I => KernelOp::OneQDiag([C64::ONE, C64::ONE]),
            Gate::X | Gate::Cx | Gate::Ccx | Gate::Mcx(_) => KernelOp::ControlledX,
            Gate::Y => KernelOp::OneQ([C64::ZERO, -C64::I, C64::I, C64::ZERO]),
            Gate::Z => KernelOp::OneQDiag([C64::ONE, C64::real(-1.0)]),
            Gate::H => {
                let h = C64::real(r);
                KernelOp::OneQ([h, h, h, -h])
            }
            Gate::S => KernelOp::OneQDiag([C64::ONE, C64::I]),
            Gate::Sdg => KernelOp::OneQDiag([C64::ONE, -C64::I]),
            Gate::T => KernelOp::OneQDiag([C64::ONE, C64::cis(PI / 4.0)]),
            Gate::Tdg => KernelOp::OneQDiag([C64::ONE, C64::cis(-PI / 4.0)]),
            Gate::Rx(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::new(0.0, -(t / 2.0).sin());
                KernelOp::OneQ([c, s, s, c])
            }
            Gate::Ry(t) => {
                let c = C64::real((t / 2.0).cos());
                let s = C64::real((t / 2.0).sin());
                KernelOp::OneQ([c, -s, s, c])
            }
            Gate::Rz(t) => KernelOp::OneQDiag([C64::cis(-t / 2.0), C64::cis(t / 2.0)]),
            Gate::U1(l) => KernelOp::OneQDiag([C64::ONE, C64::cis(*l)]),
            Gate::U2(phi, lam) => KernelOp::OneQ(u3_entries(FRAC_PI_2, *phi, *lam)),
            Gate::U3(t, phi, lam) => KernelOp::OneQ(u3_entries(*t, *phi, *lam)),
            Gate::Cz | Gate::Mcz(_) => KernelOp::PhaseAllOnes(C64::real(-1.0)),
            Gate::Cp(l) => KernelOp::PhaseAllOnes(C64::cis(*l)),
            Gate::Swap => KernelOp::Swap,
            Gate::SwapZ => KernelOp::Permutation(&SWAPZ_PERM),
            Gate::Cswap => KernelOp::Permutation(&CSWAP_PERM),
            Gate::Cu(u) => KernelOp::ControlledOneQ([u[(0, 0)], u[(0, 1)], u[(1, 0)], u[(1, 1)]]),
            Gate::Unitary(u) => KernelOp::Dense(u),
            Gate::Reset | Gate::Measure | Gate::Barrier(_) | Gate::Annot(_, _) => return None,
        };
        Some(op)
    }

    /// The 2×2 matrix of a single-qubit gate as a stack array (row-major
    /// `[m00, m01, m10, m11]`), or `None` for everything else.
    ///
    /// This is the allocation-free alternative to [`Gate::matrix`] for the
    /// per-instruction single-qubit analyses (state tracking, 1q-run
    /// collection, QPO re-synthesis).
    pub fn matrix2x2(&self) -> Option<[C64; 4]> {
        if self.num_qubits() != 1 {
            return None;
        }
        match self.kernel()? {
            KernelOp::OneQ(m) => Some(m),
            KernelOp::OneQDiag([d0, d1]) => Some([d0, C64::ZERO, C64::ZERO, d1]),
            KernelOp::ControlledX => Some([C64::ZERO, C64::ONE, C64::ONE, C64::ZERO]),
            // A 1-qubit `Gate::Unitary` block classifies as Dense; the arity
            // check above guarantees the matrix is 2×2 here.
            KernelOp::Dense(m) => Some([m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]]),
            _ => None,
        }
    }

    /// The inverse gate, or `None` for non-invertible instructions
    /// (reset/measure) and directives.
    pub fn inverse(&self) -> Option<Gate> {
        let g = match self {
            Gate::I => Gate::I,
            Gate::X => Gate::X,
            Gate::Y => Gate::Y,
            Gate::Z => Gate::Z,
            Gate::H => Gate::H,
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::U1(l) => Gate::U1(-l),
            // u2(φ,λ)⁻¹ = u3(-π/2, -λ, -φ) = u3(π/2, π-λ, -φ-π)
            Gate::U2(phi, lam) => Gate::U3(-FRAC_PI_2, -lam, -phi),
            Gate::U3(t, phi, lam) => Gate::U3(-t, -lam, -phi),
            Gate::Cx => Gate::Cx,
            Gate::Cz => Gate::Cz,
            Gate::Cp(l) => Gate::Cp(-l),
            Gate::Swap => Gate::Swap,
            // (CX₀₁·CX₁₀)⁻¹ = CX₁₀·CX₀₁ = SwapZ with arguments exchanged;
            // callers must reverse the qubit list (see Circuit::inverse).
            Gate::SwapZ => Gate::SwapZ,
            Gate::Ccx => Gate::Ccx,
            Gate::Cswap => Gate::Cswap,
            Gate::Mcx(n) => Gate::Mcx(*n),
            Gate::Mcz(n) => Gate::Mcz(*n),
            Gate::Cu(u) => Gate::Cu(u.adjoint()),
            Gate::Unitary(u) => Gate::Unitary(u.adjoint()),
            Gate::Barrier(n) => Gate::Barrier(*n),
            Gate::Annot(_, _) | Gate::Reset | Gate::Measure => return None,
        };
        Some(g)
    }

    /// Returns `true` when the same gate with its qubit arguments permuted
    /// arbitrarily is equivalent (needed when inverting or comparing
    /// circuits).
    pub fn is_symmetric(&self) -> bool {
        matches!(
            self,
            Gate::Cz | Gate::Cp(_) | Gate::Swap | Gate::Mcz(_) | Gate::Barrier(_)
        )
    }
}

/// The u3 matrix entries (row-major 2×2) in the convention used throughout
/// this workspace.
fn u3_entries(theta: f64, phi: f64, lam: f64) -> [C64; 4] {
    let c = (theta / 2.0).cos();
    let s = (theta / 2.0).sin();
    [
        C64::real(c),
        -C64::cis(lam).scale(s),
        C64::cis(phi).scale(s),
        C64::cis(phi + lam).scale(c),
    ]
}

/// The u3 matrix in the convention used throughout this workspace.
pub fn u3_matrix(theta: f64, phi: f64, lam: f64) -> Matrix {
    let [a, b, c, d] = u3_entries(theta, phi, lam);
    Matrix::from_rows(&[vec![a, b], vec![c, d]])
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::U1(t) | Gate::Cp(t) => {
                write!(f, "{}({:.4})", self.name(), t)
            }
            Gate::U2(a, b) => write!(f, "u2({a:.4},{b:.4})"),
            Gate::U3(a, b, c) => write!(f, "u3({a:.4},{b:.4},{c:.4})"),
            Gate::Annot(t, p) => write!(f, "annot({t:.4},{p:.4})"),
            Gate::Mcx(n) => write!(f, "mcx[{n}]"),
            Gate::Mcz(n) => write!(f, "mcz[{n}]"),
            _ => write!(f, "{}", self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_unitary(g: &Gate) {
        let m = g.matrix().unwrap_or_else(|| panic!("{g} has no matrix"));
        assert!(m.is_unitary(1e-12), "{g} matrix is not unitary");
    }

    #[test]
    fn all_gates_unitary() {
        let gates = vec![
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.7),
            Gate::Ry(-1.2),
            Gate::Rz(2.5),
            Gate::U1(0.3),
            Gate::U2(0.1, 0.9),
            Gate::U3(1.1, 0.2, -0.4),
            Gate::Cx,
            Gate::Cz,
            Gate::Cp(1.0),
            Gate::Swap,
            Gate::SwapZ,
            Gate::Ccx,
            Gate::Cswap,
            Gate::Mcx(3),
            Gate::Mcz(3),
            Gate::Cu(Gate::T.matrix().unwrap()),
        ];
        for g in &gates {
            assert_unitary(g);
            let dim = 1 << g.num_qubits();
            assert_eq!(g.matrix().unwrap().rows(), dim, "{g} dimension");
        }
    }

    /// Reconstructs the dense matrix a [`KernelOp`] describes (in local
    /// ordering) so the kernel classification can be checked against
    /// [`Gate::matrix`] — two independent encodings of the same gate.
    fn kernel_to_matrix(op: &KernelOp<'_>, k: usize) -> Matrix {
        let dim = 1usize << k;
        match op {
            KernelOp::OneQ(m) => Matrix::from_rows(&[vec![m[0], m[1]], vec![m[2], m[3]]]),
            KernelOp::OneQDiag(d) => Matrix::diag(d),
            KernelOp::ControlledOneQ(u) => {
                let mut m = Matrix::identity(4);
                m[(1, 1)] = u[0];
                m[(1, 3)] = u[1];
                m[(3, 1)] = u[2];
                m[(3, 3)] = u[3];
                m
            }
            KernelOp::PhaseAllOnes(p) => {
                let mut m = Matrix::identity(dim);
                m[(dim - 1, dim - 1)] = *p;
                m
            }
            KernelOp::ControlledX => {
                let mut m = Matrix::identity(dim);
                let a = (dim >> 1) - 1; // all controls set, target clear
                let b = dim - 1;
                m[(a, a)] = C64::ZERO;
                m[(b, b)] = C64::ZERO;
                m[(a, b)] = C64::ONE;
                m[(b, a)] = C64::ONE;
                m
            }
            KernelOp::Swap => {
                let mut m = Matrix::zeros(4, 4);
                m[(0, 0)] = C64::ONE;
                m[(3, 3)] = C64::ONE;
                m[(1, 2)] = C64::ONE;
                m[(2, 1)] = C64::ONE;
                m
            }
            KernelOp::Permutation(perm) => {
                let mut m = Matrix::zeros(dim, dim);
                for (l, &p) in perm.iter().enumerate() {
                    m[(p, l)] = C64::ONE;
                }
                m
            }
            KernelOp::Dense(m) => (*m).clone(),
        }
    }

    #[test]
    fn kernel_classification_matches_matrix_for_every_gate() {
        let gates = vec![
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.7),
            Gate::Ry(-1.2),
            Gate::Rz(2.5),
            Gate::U1(0.3),
            Gate::U2(0.1, 0.9),
            Gate::U3(1.1, 0.2, -0.4),
            Gate::Cx,
            Gate::Cz,
            Gate::Cp(1.0),
            Gate::Swap,
            Gate::SwapZ,
            Gate::Ccx,
            Gate::Cswap,
            Gate::Mcx(3),
            Gate::Mcz(3),
            Gate::Cu(Gate::T.matrix().unwrap()),
            Gate::Unitary(Gate::Swap.matrix().unwrap()),
        ];
        for g in &gates {
            let op = g.kernel().unwrap_or_else(|| panic!("{g} has no kernel"));
            let dense = kernel_to_matrix(&op, g.num_qubits());
            assert!(
                dense.approx_eq(&g.matrix().unwrap(), 1e-12),
                "kernel/matrix mismatch for {g}"
            );
        }
        for g in [
            Gate::Reset,
            Gate::Measure,
            Gate::Barrier(2),
            Gate::Annot(0.1, 0.2),
        ] {
            assert!(g.kernel().is_none(), "{g} must have no kernel");
        }
    }

    #[test]
    fn matrix2x2_matches_matrix_for_one_qubit_gates() {
        let gates = vec![
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.7),
            Gate::Ry(-1.2),
            Gate::Rz(2.5),
            Gate::U1(0.3),
            Gate::U2(0.1, 0.9),
            Gate::U3(1.1, 0.2, -0.4),
        ];
        for g in &gates {
            let [a, b, c, d] = g.matrix2x2().unwrap_or_else(|| panic!("{g} is 1q"));
            let m = g.matrix().unwrap();
            assert!(
                (m[(0, 0)] - a).norm() < 1e-15
                    && (m[(0, 1)] - b).norm() < 1e-15
                    && (m[(1, 0)] - c).norm() < 1e-15
                    && (m[(1, 1)] - d).norm() < 1e-15,
                "matrix2x2 mismatch for {g}"
            );
        }
        assert!(Gate::Cx.matrix2x2().is_none());
        assert!(Gate::Reset.matrix2x2().is_none());
        assert!(Gate::Annot(0.0, 0.0).matrix2x2().is_none());
    }

    #[test]
    fn matrix2x2_covers_one_qubit_unitary_blocks() {
        // A 1-qubit Gate::Unitary (the Unroller synthesizes these) must
        // expose its 2×2 like any other 1q gate; larger blocks must not.
        let g = Gate::Unitary(Gate::H.matrix().unwrap());
        let [a, b, c, d] = g.matrix2x2().expect("1q unitary block has a 2×2");
        let r = FRAC_1_SQRT_2;
        assert!((a - C64::real(r)).norm() < 1e-15 && (b - C64::real(r)).norm() < 1e-15);
        assert!((c - C64::real(r)).norm() < 1e-15 && (d - C64::real(-r)).norm() < 1e-15);
        assert!(Gate::Unitary(Gate::Cx.matrix().unwrap())
            .matrix2x2()
            .is_none());
    }

    #[test]
    fn inverses_compose_to_identity() {
        let gates = vec![
            Gate::S,
            Gate::T,
            Gate::Rx(0.7),
            Gate::U2(0.1, 0.9),
            Gate::U3(1.1, 0.2, -0.4),
            Gate::Cp(1.0),
            Gate::Cu(Gate::S.matrix().unwrap()),
        ];
        for g in gates {
            let inv = g.inverse().expect("invertible");
            let prod = inv.matrix().unwrap().matmul(&g.matrix().unwrap());
            let id = Matrix::identity(prod.rows());
            assert!(
                prod.equal_up_to_global_phase(&id, 1e-10),
                "{g} inverse failed: {prod:?}"
            );
        }
    }

    #[test]
    fn hadamard_squares_to_identity() {
        let h = Gate::H.matrix().unwrap();
        assert!(h.matmul(&h).approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn cx_truth_table() {
        let cx = Gate::Cx.matrix().unwrap();
        // |c=1,t=0⟩ (index 1) → |c=1,t=1⟩ (index 3)
        let v = cx.apply(&[C64::ZERO, C64::ONE, C64::ZERO, C64::ZERO]);
        assert!(v[3].approx_eq(C64::ONE, 1e-12));
        // |c=0,t=1⟩ (index 2) fixed
        let v = cx.apply(&[C64::ZERO, C64::ZERO, C64::ONE, C64::ZERO]);
        assert!(v[2].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn swap_decomposition_identity() {
        // SWAP = CX₀₁ · CX₁₀ · CX₀₁
        let cx01 = Gate::Cx.matrix().unwrap();
        let mut cx10 = Matrix::zeros(4, 4);
        cx10[(0, 0)] = C64::ONE;
        cx10[(1, 1)] = C64::ONE;
        cx10[(2, 3)] = C64::ONE;
        cx10[(3, 2)] = C64::ONE;
        let swap = cx01.matmul(&cx10).matmul(&cx01);
        assert!(swap.approx_eq(&Gate::Swap.matrix().unwrap(), 1e-12));
    }

    #[test]
    fn swapz_equals_swap_on_zero_first_qubit() {
        // SWAPZ(q0, q1) must act like SWAP whenever q0 = |0⟩ (Eq. 4).
        let swapz = Gate::SwapZ.matrix().unwrap();
        let swap = Gate::Swap.matrix().unwrap();
        // Input |q1=ψ⟩⊗|q0=0⟩: amplitudes at indices with bit0 = 0.
        for q1 in [C64::real(0.6), C64::new(0.0, 0.8)] {
            let mut v = vec![C64::ZERO; 4];
            v[0] = C64::ONE - q1.scale(1.0); // α|q1=0⟩
            v[2] = q1; // β|q1=1⟩ (bit1 set, bit0 clear)
            let a = swapz.apply(&v);
            let b = swap.apply(&v);
            for (x, y) in a.iter().zip(&b) {
                assert!(x.approx_eq(*y, 1e-12), "SWAPZ≠SWAP on |ψ,0⟩");
            }
        }
    }

    #[test]
    fn swapz_differs_from_swap_generally() {
        let swapz = Gate::SwapZ.matrix().unwrap();
        let swap = Gate::Swap.matrix().unwrap();
        assert!(!swapz.approx_eq(&swap, 1e-6));
    }

    #[test]
    fn toffoli_flips_only_when_both_controls_set() {
        let ccx = Gate::Ccx.matrix().unwrap();
        // |c₁=1, c₂=1, t=0⟩ = index 3 → index 7.
        let mut v = vec![C64::ZERO; 8];
        v[3] = C64::ONE;
        let out = ccx.apply(&v);
        assert!(out[7].approx_eq(C64::ONE, 1e-12));
        // |c₁=1, c₂=0, t=0⟩ = index 1 fixed.
        let mut v = vec![C64::ZERO; 8];
        v[1] = C64::ONE;
        let out = ccx.apply(&v);
        assert!(out[1].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn mcx_matches_ccx_for_two_controls() {
        assert!(Gate::Mcx(2)
            .matrix()
            .unwrap()
            .approx_eq(&Gate::Ccx.matrix().unwrap(), 1e-12));
    }

    #[test]
    fn mcz_phase_on_all_ones() {
        let m = Gate::Mcz(2).matrix().unwrap();
        assert!(m[(7, 7)].approx_eq(C64::real(-1.0), 1e-12));
        assert!(m[(0, 0)].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn u_family_consistency() {
        // u2(φ,λ) = u3(π/2,φ,λ); u1(λ) = u3(0,0,λ) up to global phase.
        let u2 = Gate::U2(0.4, 1.3).matrix().unwrap();
        let u3 = Gate::U3(FRAC_PI_2, 0.4, 1.3).matrix().unwrap();
        assert!(u2.approx_eq(&u3, 1e-12));
        let u1 = Gate::U1(0.8).matrix().unwrap();
        let u3 = Gate::U3(0.0, 0.0, 0.8).matrix().unwrap();
        assert!(u1.equal_up_to_global_phase(&u3, 1e-12));
    }

    #[test]
    fn rz_vs_u1_global_phase() {
        let rz = Gate::Rz(0.9).matrix().unwrap();
        let u1 = Gate::U1(0.9).matrix().unwrap();
        assert!(rz.equal_up_to_global_phase(&u1, 1e-12));
        assert!(!rz.approx_eq(&u1, 1e-12));
    }

    #[test]
    fn basis_state_bloch_round_trip() {
        for s in [
            BasisState::Zero,
            BasisState::One,
            BasisState::Plus,
            BasisState::Minus,
            BasisState::Left,
            BasisState::Right,
        ] {
            let (t, p) = s.bloch_angles();
            assert_eq!(BasisState::from_bloch_angles(t, p, 1e-9), Some(s));
        }
        // A non-basis state maps to None.
        assert_eq!(BasisState::from_bloch_angles(0.3, 0.0, 1e-9), None);
    }

    #[test]
    fn basis_state_vectors_normalized() {
        for s in [
            BasisState::Zero,
            BasisState::One,
            BasisState::Plus,
            BasisState::Minus,
            BasisState::Left,
            BasisState::Right,
        ] {
            let [a, b] = s.state_vector();
            assert!((a.norm_sqr() + b.norm_sqr() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn directive_and_arity_metadata() {
        assert!(Gate::Barrier(3).is_directive());
        assert!(Gate::Annot(0.0, 0.0).is_directive());
        assert!(!Gate::Reset.is_directive());
        assert!(!Gate::Reset.is_unitary_gate());
        assert_eq!(Gate::Mcx(4).num_qubits(), 5);
        assert_eq!(Gate::Barrier(7).num_qubits(), 7);
        assert_eq!(Gate::Unitary(Matrix::identity(8)).num_qubits(), 3);
    }
}
