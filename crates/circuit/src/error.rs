//! The shared typed error taxonomy of the transpile stack.
//!
//! Every library-path failure in the circuit IR, the synthesis kernels,
//! the transpiler passes and the RPO pipeline surfaces as an [`RpoError`]
//! instead of a panic, so a caller embedding the stack (the planned
//! `qc-serve` compile server in particular) can map failures to responses
//! without ever losing the process. The variants separate the four
//! fundamentally different audiences a failure has:
//!
//! * [`RpoError::InvalidInput`] — the caller's request is malformed
//!   (oversized circuit, unsupported gate, non-finite angle). Fix the
//!   request.
//! * [`RpoError::PassFailed`] — a named pass failed or panicked and could
//!   not be contained. Report a bug; the input may still be compilable
//!   with the pass quarantined.
//! * [`RpoError::BudgetExceeded`] — a hard resource ceiling was hit.
//!   Raise the budget or shrink the circuit.
//! * [`RpoError::Numeric`] — a numerical kernel detected a non-unitary or
//!   non-finite matrix where a unitary was required.
//! * [`RpoError::Internal`] — an invariant of the stack itself was
//!   violated (a bug, not a user error).

use std::fmt;

/// The budget dimension a [`RpoError::BudgetExceeded`] ran out of.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetKind {
    /// The wall-clock deadline elapsed.
    Deadline,
    /// The fixed-point iteration ceiling was reached.
    MaxIterations,
    /// The gate-count ceiling was exceeded.
    MaxGates,
    /// The qubit-count ceiling was exceeded.
    MaxQubits,
}

impl fmt::Display for BudgetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BudgetKind::Deadline => "wall-clock deadline",
            BudgetKind::MaxIterations => "fixed-point iteration limit",
            BudgetKind::MaxGates => "gate-count limit",
            BudgetKind::MaxQubits => "qubit-count limit",
        };
        f.write_str(s)
    }
}

/// A typed failure anywhere in the transpile stack.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpoError {
    /// The input circuit or request is malformed: oversized for the
    /// backend, carries a gate with no decomposition rule, or contains
    /// non-finite parameters.
    InvalidInput(String),
    /// A pass failed (or panicked) in a way the quarantine machinery could
    /// not absorb; `pass` names the stage, `cause` the underlying failure.
    PassFailed {
        /// Name of the failing pass or stage.
        pass: String,
        /// Human-readable cause (panic payload or inner error).
        cause: String,
    },
    /// A hard resource budget ([`BudgetKind`]) was exceeded.
    BudgetExceeded {
        /// Which budget dimension ran out.
        kind: BudgetKind,
    },
    /// A numerical kernel received or produced a matrix that is not a
    /// finite unitary; `context` names the kernel.
    Numeric {
        /// Where the numerical check failed.
        context: String,
    },
    /// The serving layer refused admission because accepting the request
    /// would overload the process (queue full, or the predicted queue wait
    /// already exceeds the request's deadline slack). The request was
    /// never started; retrying later is safe.
    Overloaded {
        /// Jobs queued or running when the request was refused.
        queued: usize,
        /// The admission queue's capacity.
        capacity: usize,
    },
    /// The serving layer dropped the request for a non-load reason —
    /// shutdown drain in progress, or the deadline expired while the
    /// request sat in the admission queue. The request was never started.
    Shed {
        /// Why the request was dropped.
        reason: String,
    },
    /// An internal invariant was violated (a bug, not a user error).
    Internal(String),
}

impl RpoError {
    /// The canonical oversized-circuit error.
    pub fn too_many_qubits(circuit: usize, backend: usize) -> Self {
        RpoError::InvalidInput(format!(
            "circuit needs {circuit} qubits but the backend has {backend}"
        ))
    }

    /// The canonical no-decomposition-rule error.
    pub fn unsupported_gate(name: impl fmt::Display) -> Self {
        RpoError::InvalidInput(format!("no decomposition rule for gate '{name}'"))
    }
}

impl fmt::Display for RpoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RpoError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            RpoError::PassFailed { pass, cause } => {
                write!(f, "pass '{pass}' failed: {cause}")
            }
            RpoError::BudgetExceeded { kind } => {
                write!(f, "transpile budget exceeded: {kind}")
            }
            RpoError::Numeric { context } => {
                write!(f, "numerical failure in {context}")
            }
            RpoError::Overloaded { queued, capacity } => {
                write!(
                    f,
                    "service overloaded: {queued} jobs queued (capacity {capacity})"
                )
            }
            RpoError::Shed { reason } => write!(f, "request shed: {reason}"),
            RpoError::Internal(msg) => write!(f, "internal transpiler error: {msg}"),
        }
    }
}

impl std::error::Error for RpoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        assert!(RpoError::too_many_qubits(20, 15).to_string().contains("20"));
        assert!(RpoError::unsupported_gate("foo")
            .to_string()
            .contains("foo"));
        let e = RpoError::PassFailed {
            pass: "QBO".into(),
            cause: "boom".into(),
        };
        assert!(e.to_string().contains("QBO") && e.to_string().contains("boom"));
        let e = RpoError::BudgetExceeded {
            kind: BudgetKind::Deadline,
        };
        assert!(e.to_string().contains("deadline"));
        let e = RpoError::Numeric {
            context: "weyl".into(),
        };
        assert!(e.to_string().contains("weyl"));
    }
}
