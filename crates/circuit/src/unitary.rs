//! Circuit unitaries via the shared kernel engine, plus gate embedding.
//!
//! Transpiler passes (block consolidation, equivalence assertions in tests)
//! need the 2ⁿ×2ⁿ unitary of a small circuit. [`circuit_unitary`] builds it
//! in three stages:
//!
//! 1. **Fusion** ([`crate::fusion`]): 1q runs collapse to single 2×2
//!    products, 1q gates fold into adjacent dense blocks, and same-pair /
//!    in-block gates consolidate into one matrix — planned under the
//!    *panel* cost profile ([`crate::fusion::FusionProfile::panels`]),
//!    where passes run at cache bandwidth and only arithmetic-reducing
//!    merges pay off.
//! 2. **Cache-blocked panels**: the 2ⁿ columns are processed in panels
//!    sized to keep each panel (2ⁿ rows × width) inside L2
//!    ([`PANEL_TARGET_ELEMS`]); the whole fused gate sequence streams over
//!    one panel before the next is touched, so construction runs at cache
//!    bandwidth instead of DRAM bandwidth once n ≳ 9.
//! 3. **Kernel streaming** ([`qc_math::KernelEngine`]): each fused op is a
//!    structured in-place pass over the panel's rows — **O(2ⁿ·4ᵏ/2ᵏ) per
//!    dense k-qubit op** and far less for diagonal/permutation ops.
//!
//! Under the `parallel` cargo feature, panels are distributed across the
//! vendored scoped-thread pool; panel boundaries depend only on n, so the
//! result is **bit-identical at every thread count** (each panel is an
//! independent computation).
//!
//! The older embed-then-matmul formulation ([`circuit_unitary_reference`])
//! costs O(8ⁿ) per gate in its dense form and is retained as the
//! independent oracle for equivalence tests and benchmarks;
//! [`circuit_unitary_unfused`] preserves the intermediate per-gate
//! streaming path (no fusion, single panel) for the same purpose.
//!
//! Rule of thumb: use [`circuit_unitary`] everywhere; use the others only
//! when an implementation-independent cross-check is the point. All are
//! dense and intended for n ≲ 12; the state-vector simulator in `qc-sim`
//! is the fast path for larger functional checks (one column, not 2ⁿ).

use crate::circuit::Circuit;
use crate::fusion::{fuse_instructions_with, FusedInst, FusionProfile};
use crate::gate::Gate;
use qc_math::{KernelEngine, KernelOp, Matrix, C64};

/// Embeds a k-qubit gate matrix into an n-qubit unitary, acting on the given
/// qubits (little-endian: `qubits[0]` is the gate's least-significant local
/// bit).
///
/// # Panics
///
/// Panics if the matrix dimension does not match `qubits.len()` or a qubit
/// index is out of range / repeated.
pub fn embed(gate_matrix: &Matrix, qubits: &[usize], n: usize) -> Matrix {
    let k = qubits.len();
    assert_eq!(gate_matrix.rows(), 1 << k, "matrix dimension mismatch");
    for (i, q) in qubits.iter().enumerate() {
        assert!(*q < n, "qubit {q} out of range");
        assert!(!qubits[i + 1..].contains(q), "duplicate qubit {q}");
    }
    let dim = 1usize << n;
    let mut out = Matrix::zeros(dim, dim);
    for col in 0..dim {
        // Extract local index from the column basis state.
        let mut local = 0usize;
        for (bit, &q) in qubits.iter().enumerate() {
            if (col >> q) & 1 == 1 {
                local |= 1 << bit;
            }
        }
        let base = {
            // Column with the gate's local bits cleared.
            let mut b = col;
            for &q in qubits {
                b &= !(1 << q);
            }
            b
        };
        for lrow in 0..(1 << k) {
            let amp = gate_matrix[(lrow, local)];
            if amp == C64::ZERO {
                continue;
            }
            let mut row = base;
            for (bit, &q) in qubits.iter().enumerate() {
                if (lrow >> bit) & 1 == 1 {
                    row |= 1 << q;
                }
            }
            out[(row, col)] = amp;
        }
    }
    out
}

/// Column-panel size target, in scalars: 2¹⁶ C64 = 1 MiB, sized to keep a
/// whole panel resident in L2 while the fused gate sequence streams over it.
pub const PANEL_TARGET_ELEMS: usize = 1 << 16;

/// The panel width used for an n-qubit unitary (`dim = 2ⁿ`): the full
/// matrix when it already fits the target, else `PANEL_TARGET_ELEMS / dim`
/// columns (≥ 8). Depends only on `dim`, never on thread count — panel
/// decomposition is part of the deterministic result contract.
fn panel_width(dim: usize) -> usize {
    if dim * dim <= PANEL_TARGET_ELEMS {
        dim
    } else {
        (PANEL_TARGET_ELEMS / dim).clamp(8, dim)
    }
}

/// The full unitary of a circuit: fusion, then cache-blocked panel
/// streaming of the fused kernels (see the module docs for the pipeline).
///
/// In the product G·U a gate acts on the *row-index* bits, so each kernel
/// step mixes whole rows — contiguous element-wise passes over the panel,
/// which vectorize and stream; no transpose is ever needed. Per k-qubit
/// gate this is O(4ⁿ·4ᵏ/2ᵏ) dense — and far less for the structured
/// kernels (diagonal, controlled-X, swap) — versus the O(8ⁿ)
/// embed-then-matmul of [`circuit_unitary_reference`].
///
/// # Panics
///
/// Panics if the circuit contains a non-unitary instruction (reset or
/// measure). Directives (barriers, annotations) are skipped.
pub fn circuit_unitary(circuit: &Circuit) -> Matrix {
    let n = circuit.num_qubits();
    // Panel profile: the plan streams over L2-resident column panels, so
    // the planner only makes arithmetic-reducing merges (passes are cheap).
    let plan = fuse_instructions_with(
        circuit.instructions(),
        n,
        FusionProfile::panels_calibrated(),
    );
    unitary_from_plan(&plan, n, panel_width(1usize << n))
}

/// [`circuit_unitary`] with an explicit panel width (a power of two
/// dividing 2ⁿ). Exposed for oracle tests that pin the panel decomposition
/// on small circuits; everything else should use [`circuit_unitary`].
#[doc(hidden)]
pub fn circuit_unitary_with_panel_width(circuit: &Circuit, width: usize) -> Matrix {
    let n = circuit.num_qubits();
    let plan = fuse_instructions_with(
        circuit.instructions(),
        n,
        FusionProfile::panels_calibrated(),
    );
    unitary_from_plan(&plan, n, width)
}

/// The per-gate kernel-streaming construction without fusion or panels —
/// PR 1's formulation, retained as a mid-level oracle (independent of the
/// fusion planner, shares only the kernel engine) and benchmark baseline.
///
/// # Panics
///
/// Panics on non-unitary instructions; directives are skipped.
pub fn circuit_unitary_unfused(circuit: &Circuit) -> Matrix {
    let n = circuit.num_qubits();
    let dim = 1usize << n;
    let mut data = vec![C64::ZERO; dim * dim];
    for i in 0..dim {
        data[i * dim + i] = C64::ONE;
    }
    let mut engine = KernelEngine::new();
    for inst in circuit.instructions() {
        if inst.gate.is_directive() {
            continue;
        }
        let op = inst
            .gate
            .kernel()
            .unwrap_or_else(|| panic!("non-unitary instruction {} in circuit_unitary", inst.gate));
        engine.apply_batched(&mut data, n, dim, &op, &inst.qubits);
    }
    Matrix::from_vec(dim, dim, data)
}

/// Streams a fused plan over column panels of the identity, assembling the
/// full row-major unitary. Panels are independent; under the `parallel`
/// feature they are chunked across the scoped-thread pool.
fn unitary_from_plan(plan: &[FusedInst<'_>], n: usize, width: usize) -> Matrix {
    let dim = 1usize << n;
    assert!(
        width.is_power_of_two() && width <= dim,
        "panel width must be a power of two ≤ 2^n"
    );
    if width == dim {
        // Single panel: stream in place over the identity, no copies.
        let mut data = vec![C64::ZERO; dim * dim];
        for i in 0..dim {
            data[i * dim + i] = C64::ONE;
        }
        let mut engine = KernelEngine::new();
        for fi in plan {
            engine.apply_batched(&mut data, n, dim, &fi.op(), &fi.qubits);
        }
        return Matrix::from_vec(dim, dim, data);
    }
    let panels = dim / width;
    let mut data = vec![C64::ZERO; dim * dim];
    let out = SendPtr(data.as_mut_ptr());
    let body = |panel_lo: usize, panel_hi: usize| {
        // Per-executor engine and panel scratch, reused across its panels.
        let mut engine = KernelEngine::new();
        let mut scratch = vec![C64::ZERO; dim * width];
        for p in panel_lo..panel_hi {
            let col0 = p * width;
            scratch.fill(C64::ZERO);
            // Identity restricted to columns [col0, col0 + width).
            for c in 0..width {
                scratch[(col0 + c) * width + c] = C64::ONE;
            }
            for fi in plan {
                engine.apply_batched(&mut scratch, n, width, &fi.op(), &fi.qubits);
            }
            // Scatter the panel into the output's column stripe. Executors
            // own disjoint panels, hence disjoint column ranges.
            for r in 0..dim {
                // SAFETY: `out` outlives the loop (we hold `data` alive
                // below) and stripes [r*dim + col0, +width) are disjoint
                // across panels.
                unsafe {
                    std::ptr::copy_nonoverlapping(
                        scratch.as_ptr().add(r * width),
                        out.add(r * dim + col0),
                        width,
                    );
                }
            }
        }
    };
    run_panels(panels, body);
    Matrix::from_vec(dim, dim, data)
}

/// A `Send + Sync` raw pointer wrapper for the panel scatter; executors
/// write disjoint column stripes.
#[derive(Copy, Clone)]
struct SendPtr(*mut C64);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Pointer to element `off`. Taking `self` by value makes closures
    /// capture the whole wrapper (not the raw field), keeping them `Sync`.
    ///
    /// # Safety
    ///
    /// Same contract as [`pointer::add`]; writes through the result must
    /// target ranges disjoint from every other executor's.
    unsafe fn add(self, off: usize) -> *mut C64 {
        unsafe { self.0.add(off) }
    }
}

/// Runs `body(lo, hi)` over panel chunks — through the pool's shared
/// partition policy (`scoped_pool::run_chunked`, the same splitter the
/// kernel loops use) when the `parallel` feature is on, inline otherwise.
fn run_panels<F: Fn(usize, usize) + Sync>(panels: usize, body: F) {
    #[cfg(feature = "parallel")]
    scoped_pool::run_chunked(panels, body);
    #[cfg(not(feature = "parallel"))]
    body(0, panels);
}

/// Incrementally accumulates the unitary of a gate sequence on a small
/// register — the engine-backed replacement for re-running
/// [`circuit_unitary`] on a growing circuit. `ConsolidateBlocks` extends
/// one of these gate-by-gate per candidate block (a 4×4 per 2q block)
/// instead of re-walking the block per candidate.
#[derive(Clone, Debug)]
pub struct UnitaryAccumulator {
    n: usize,
    dim: usize,
    data: Vec<C64>,
    engine: KernelEngine,
}

impl UnitaryAccumulator {
    /// A fresh accumulator holding the 2ⁿ×2ⁿ identity.
    pub fn new(n: usize) -> Self {
        let dim = 1usize << n;
        let mut acc = UnitaryAccumulator {
            n,
            dim,
            data: vec![C64::ZERO; dim * dim],
            engine: KernelEngine::new(),
        };
        acc.reset();
        acc
    }

    /// Restores the identity without reallocating.
    pub fn reset(&mut self) {
        self.data.fill(C64::ZERO);
        for i in 0..self.dim {
            self.data[i * self.dim + i] = C64::ONE;
        }
    }

    /// Left-multiplies the accumulated unitary by `gate` on `qubits`
    /// (local indices < n), i.e. appends the gate in circuit order.
    ///
    /// # Panics
    ///
    /// Panics on non-unitary instructions or qubit-index errors.
    pub fn push(&mut self, gate: &Gate, qubits: &[usize]) {
        if gate.is_directive() {
            return;
        }
        let op = gate
            .kernel()
            .unwrap_or_else(|| panic!("non-unitary instruction {gate} in UnitaryAccumulator"));
        self.push_op(&op, qubits);
    }

    /// Appends a raw kernel op (see [`UnitaryAccumulator::push`]).
    pub fn push_op(&mut self, op: &KernelOp<'_>, qubits: &[usize]) {
        self.engine
            .apply_batched(&mut self.data, self.n, self.dim, op, qubits);
    }

    /// The accumulated unitary so far.
    pub fn matrix(&self) -> Matrix {
        Matrix::from_vec(self.dim, self.dim, self.data.clone())
    }
}

/// The original embed-then-matmul construction of a circuit's unitary:
/// every gate is embedded as a full 2ⁿ×2ⁿ matrix and multiplied into the
/// accumulator.
///
/// O(8ⁿ) per gate in dense form; kept as the implementation-independent
/// **oracle** for the kernel-based [`circuit_unitary`] — equivalence tests
/// and the `kernels` criterion bench compare the two paths. New code should
/// call [`circuit_unitary`].
///
/// # Panics
///
/// Panics if the circuit contains a non-unitary instruction (reset or
/// measure). Directives (barriers, annotations) are skipped.
pub fn circuit_unitary_reference(circuit: &Circuit) -> Matrix {
    let n = circuit.num_qubits();
    let mut u = Matrix::identity(1 << n);
    for inst in circuit.instructions() {
        if inst.gate.is_directive() {
            continue;
        }
        let m = inst
            .gate
            .matrix()
            .unwrap_or_else(|| panic!("non-unitary instruction {} in circuit_unitary", inst.gate));
        let g = embed(&m, &inst.qubits, n);
        u = g.matmul(&u);
    }
    u
}

/// Convenience equivalence check: do two circuits implement the same unitary
/// up to global phase?
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, eps: f64) -> bool {
    if a.num_qubits() != b.num_qubits() {
        return false;
    }
    circuit_unitary(a).equal_up_to_global_phase(&circuit_unitary(b), eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn embed_single_qubit_gate() {
        // X on qubit 1 of 2: swaps indices differing in bit 1.
        let x = Gate::X.matrix().unwrap();
        let m = embed(&x, &[1], 2);
        assert_eq!(m[(2, 0)], C64::ONE);
        assert_eq!(m[(0, 2)], C64::ONE);
        assert_eq!(m[(3, 1)], C64::ONE);
        assert_eq!(m[(0, 0)], C64::ZERO);
        assert!(m.is_unitary(1e-12));
    }

    #[test]
    fn embed_cx_both_orientations() {
        let cx = Gate::Cx.matrix().unwrap();
        // control 0, target 1: flips bit1 when bit0 set → 1↔3.
        let m = embed(&cx, &[0, 1], 2);
        assert_eq!(m[(3, 1)], C64::ONE);
        assert_eq!(m[(1, 3)], C64::ONE);
        assert_eq!(m[(0, 0)], C64::ONE);
        // control 1, target 0: flips bit0 when bit1 set → 2↔3.
        let m = embed(&cx, &[1, 0], 2);
        assert_eq!(m[(3, 2)], C64::ONE);
        assert_eq!(m[(2, 3)], C64::ONE);
    }

    #[test]
    fn embed_identity_elsewhere() {
        let h = Gate::H.matrix().unwrap();
        let m = embed(&h, &[0], 3);
        // Qubits 1,2 untouched: block structure H ⊗ I is on bit 0.
        let i4 = Matrix::identity(4);
        let expect = i4.kron(&h); // bit0 least significant ⇒ H is rightmost factor
        assert!(m.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn bell_circuit_unitary() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let u = circuit_unitary(&c);
        // U|00⟩ = (|00⟩+|11⟩)/√2.
        let v = u.apply(&[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO]);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(v[0].approx_eq(C64::real(r), 1e-12));
        assert!(v[3].approx_eq(C64::real(r), 1e-12));
        assert!(v[1].norm() < 1e-12 && v[2].norm() < 1e-12);
    }

    #[test]
    fn swap_as_three_cnots() {
        let mut a = Circuit::new(2);
        a.swap(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1).cx(1, 0).cx(0, 1);
        assert!(circuits_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn swapz_is_two_cnots() {
        let mut a = Circuit::new(2);
        a.swapz(0, 1);
        let mut b = Circuit::new(2);
        b.cx(1, 0).cx(0, 1);
        assert!(circuits_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn directives_skipped() {
        let mut a = Circuit::new(2);
        a.h(0).barrier().annot_zero(1).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1);
        assert!(circuits_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn cz_symmetric_embedding() {
        let cz = Gate::Cz.matrix().unwrap();
        let m1 = embed(&cz, &[0, 1], 2);
        let m2 = embed(&cz, &[1, 0], 2);
        assert!(m1.approx_eq(&m2, 1e-12));
    }

    #[test]
    fn three_qubit_toffoli_embedding() {
        let ccx = Gate::Ccx.matrix().unwrap();
        // controls on qubits 2,1, target 0: flips bit0 when bits 1,2 set.
        let m = embed(&ccx, &[2, 1, 0], 3);
        assert_eq!(m[(7, 6)], C64::ONE);
        assert_eq!(m[(6, 7)], C64::ONE);
        assert_eq!(m[(5, 5)], C64::ONE);
    }
}
