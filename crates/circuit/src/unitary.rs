//! Circuit unitaries via the shared kernel engine, plus gate embedding.
//!
//! Transpiler passes (block consolidation, equivalence assertions in tests)
//! need the 2ⁿ×2ⁿ unitary of a small circuit. [`circuit_unitary`] builds it
//! by applying each gate's kernel to the 2ⁿ columns of an identity matrix
//! through [`qc_math::KernelEngine`] — **O(2ⁿ·4ᵏ) work per column, so
//! O(4ⁿ·4ᵏ/2ᵏ) per k-qubit gate**, with no per-gate allocation. The older
//! embed-then-matmul formulation ([`circuit_unitary_reference`]) costs
//! O(8ⁿ) per gate in its dense form (O(4ⁿ·2ᵏ) with zero-skipping, plus two
//! 4ⁿ-entry allocations per gate) and is retained as the independent oracle
//! for equivalence tests and benchmarks.
//!
//! Rule of thumb: use [`circuit_unitary`] everywhere; use
//! [`circuit_unitary_reference`] only when an implementation-independent
//! cross-check is the point. Both are dense and intended for n ≲ 12; the
//! state-vector simulator in `qc-sim` is the fast path for larger
//! functional checks (one column, not 2ⁿ).

use crate::circuit::Circuit;
use qc_math::{KernelEngine, Matrix, C64};

/// Embeds a k-qubit gate matrix into an n-qubit unitary, acting on the given
/// qubits (little-endian: `qubits[0]` is the gate's least-significant local
/// bit).
///
/// # Panics
///
/// Panics if the matrix dimension does not match `qubits.len()` or a qubit
/// index is out of range / repeated.
pub fn embed(gate_matrix: &Matrix, qubits: &[usize], n: usize) -> Matrix {
    let k = qubits.len();
    assert_eq!(gate_matrix.rows(), 1 << k, "matrix dimension mismatch");
    for (i, q) in qubits.iter().enumerate() {
        assert!(*q < n, "qubit {q} out of range");
        assert!(!qubits[i + 1..].contains(q), "duplicate qubit {q}");
    }
    let dim = 1usize << n;
    let mut out = Matrix::zeros(dim, dim);
    for col in 0..dim {
        // Extract local index from the column basis state.
        let mut local = 0usize;
        for (bit, &q) in qubits.iter().enumerate() {
            if (col >> q) & 1 == 1 {
                local |= 1 << bit;
            }
        }
        let base = {
            // Column with the gate's local bits cleared.
            let mut b = col;
            for &q in qubits {
                b &= !(1 << q);
            }
            b
        };
        for lrow in 0..(1 << k) {
            let amp = gate_matrix[(lrow, local)];
            if amp == C64::ZERO {
                continue;
            }
            let mut row = base;
            for (bit, &q) in qubits.iter().enumerate() {
                if (lrow >> bit) & 1 == 1 {
                    row |= 1 << q;
                }
            }
            out[(row, col)] = amp;
        }
    }
    out
}

/// The full unitary of a circuit.
///
/// Built by streaming every gate's kernel over an identity matrix stored
/// row-major: in the product G·U a gate acts on the *row-index* bits, so
/// each kernel step mixes whole rows — contiguous length-2ⁿ element-wise
/// passes, which vectorize and stream (the 2ⁿ columns are updated in one
/// batch; no transpose is ever needed). Per k-qubit gate this is
/// O(4ⁿ·4ᵏ/2ᵏ) dense — and far less for the structured kernels (diagonal,
/// controlled-X, swap) — versus the O(8ⁿ) embed-then-matmul of
/// [`circuit_unitary_reference`].
///
/// # Panics
///
/// Panics if the circuit contains a non-unitary instruction (reset or
/// measure). Directives (barriers, annotations) are skipped.
pub fn circuit_unitary(circuit: &Circuit) -> Matrix {
    let n = circuit.num_qubits();
    let dim = 1usize << n;
    // Row-major U, starting as the identity. Each gate mixes *rows* (a gate
    // acts on the row-index bits of U in the product G·U), so every kernel
    // step is an element-wise pass over contiguous length-2ⁿ rows.
    let mut data = vec![C64::ZERO; dim * dim];
    for i in 0..dim {
        data[i * dim + i] = C64::ONE;
    }
    let mut engine = KernelEngine::new();
    for inst in circuit.instructions() {
        if inst.gate.is_directive() {
            continue;
        }
        let op = inst
            .gate
            .kernel()
            .unwrap_or_else(|| panic!("non-unitary instruction {} in circuit_unitary", inst.gate));
        engine.apply_batched(&mut data, n, dim, &op, &inst.qubits);
    }
    Matrix::from_vec(dim, dim, data)
}

/// The original embed-then-matmul construction of a circuit's unitary:
/// every gate is embedded as a full 2ⁿ×2ⁿ matrix and multiplied into the
/// accumulator.
///
/// O(8ⁿ) per gate in dense form; kept as the implementation-independent
/// **oracle** for the kernel-based [`circuit_unitary`] — equivalence tests
/// and the `kernels` criterion bench compare the two paths. New code should
/// call [`circuit_unitary`].
///
/// # Panics
///
/// Panics if the circuit contains a non-unitary instruction (reset or
/// measure). Directives (barriers, annotations) are skipped.
pub fn circuit_unitary_reference(circuit: &Circuit) -> Matrix {
    let n = circuit.num_qubits();
    let mut u = Matrix::identity(1 << n);
    for inst in circuit.instructions() {
        if inst.gate.is_directive() {
            continue;
        }
        let m = inst
            .gate
            .matrix()
            .unwrap_or_else(|| panic!("non-unitary instruction {} in circuit_unitary", inst.gate));
        let g = embed(&m, &inst.qubits, n);
        u = g.matmul(&u);
    }
    u
}

/// Convenience equivalence check: do two circuits implement the same unitary
/// up to global phase?
pub fn circuits_equivalent(a: &Circuit, b: &Circuit, eps: f64) -> bool {
    if a.num_qubits() != b.num_qubits() {
        return false;
    }
    circuit_unitary(a).equal_up_to_global_phase(&circuit_unitary(b), eps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn embed_single_qubit_gate() {
        // X on qubit 1 of 2: swaps indices differing in bit 1.
        let x = Gate::X.matrix().unwrap();
        let m = embed(&x, &[1], 2);
        assert_eq!(m[(2, 0)], C64::ONE);
        assert_eq!(m[(0, 2)], C64::ONE);
        assert_eq!(m[(3, 1)], C64::ONE);
        assert_eq!(m[(0, 0)], C64::ZERO);
        assert!(m.is_unitary(1e-12));
    }

    #[test]
    fn embed_cx_both_orientations() {
        let cx = Gate::Cx.matrix().unwrap();
        // control 0, target 1: flips bit1 when bit0 set → 1↔3.
        let m = embed(&cx, &[0, 1], 2);
        assert_eq!(m[(3, 1)], C64::ONE);
        assert_eq!(m[(1, 3)], C64::ONE);
        assert_eq!(m[(0, 0)], C64::ONE);
        // control 1, target 0: flips bit0 when bit1 set → 2↔3.
        let m = embed(&cx, &[1, 0], 2);
        assert_eq!(m[(3, 2)], C64::ONE);
        assert_eq!(m[(2, 3)], C64::ONE);
    }

    #[test]
    fn embed_identity_elsewhere() {
        let h = Gate::H.matrix().unwrap();
        let m = embed(&h, &[0], 3);
        // Qubits 1,2 untouched: block structure H ⊗ I is on bit 0.
        let i4 = Matrix::identity(4);
        let expect = i4.kron(&h); // bit0 least significant ⇒ H is rightmost factor
        assert!(m.approx_eq(&expect, 1e-12));
    }

    #[test]
    fn bell_circuit_unitary() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let u = circuit_unitary(&c);
        // U|00⟩ = (|00⟩+|11⟩)/√2.
        let v = u.apply(&[C64::ONE, C64::ZERO, C64::ZERO, C64::ZERO]);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(v[0].approx_eq(C64::real(r), 1e-12));
        assert!(v[3].approx_eq(C64::real(r), 1e-12));
        assert!(v[1].norm() < 1e-12 && v[2].norm() < 1e-12);
    }

    #[test]
    fn swap_as_three_cnots() {
        let mut a = Circuit::new(2);
        a.swap(0, 1);
        let mut b = Circuit::new(2);
        b.cx(0, 1).cx(1, 0).cx(0, 1);
        assert!(circuits_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn swapz_is_two_cnots() {
        let mut a = Circuit::new(2);
        a.swapz(0, 1);
        let mut b = Circuit::new(2);
        b.cx(1, 0).cx(0, 1);
        assert!(circuits_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn directives_skipped() {
        let mut a = Circuit::new(2);
        a.h(0).barrier().annot_zero(1).cx(0, 1);
        let mut b = Circuit::new(2);
        b.h(0).cx(0, 1);
        assert!(circuits_equivalent(&a, &b, 1e-10));
    }

    #[test]
    fn cz_symmetric_embedding() {
        let cz = Gate::Cz.matrix().unwrap();
        let m1 = embed(&cz, &[0, 1], 2);
        let m2 = embed(&cz, &[1, 0], 2);
        assert!(m1.approx_eq(&m2, 1e-12));
    }

    #[test]
    fn three_qubit_toffoli_embedding() {
        let ccx = Gate::Ccx.matrix().unwrap();
        // controls on qubits 2,1, target 0: flips bit0 when bits 1,2 set.
        let m = embed(&ccx, &[2, 1, 0], 3);
        assert_eq!(m[(7, 6)], C64::ONE);
        assert_eq!(m[(6, 7)], C64::ONE);
        assert_eq!(m[(5, 5)], C64::ONE);
    }
}
