//! Stable binary (de)serialization of circuits for persistence.
//!
//! [`crate::canonical_bytes`] already defines a deterministic, bit-exact,
//! prefix-free byte encoding of a circuit — it is the content identity the
//! serve cache keys on. This module adds the inverse, [`decode_circuit`],
//! so the same bytes can serve as the *storage* format of the serve
//! layer's persistent cache segments: a record written by one process
//! replays in another as the bit-identical circuit (every `f64` parameter
//! round-trips through its IEEE-754 bit pattern, never through text).
//!
//! Decoding is defensive — persistence records cross process lifetimes and
//! may be torn or corrupted on disk. Every length is bounds-checked before
//! use, gate arity and qubit indices are validated before construction,
//! and any malformed input returns [`RpoError::InvalidInput`]; no input
//! can make the decoder panic or allocate unboundedly.

use crate::circuit::{Circuit, Instruction};
use crate::error::RpoError;
use crate::gate::Gate;
use qc_math::{Matrix, C64};

/// Hard ceiling on decoded sizes: a corrupt length prefix must not turn
/// into a multi-gigabyte allocation. Generous vs any real workload (the
/// widest backend is 64 qubits; circuits are thousands of gates).
const MAX_QUBITS: u64 = 1 << 12;
const MAX_INSTRUCTIONS: u64 = 1 << 24;
const MAX_NAME_LEN: u64 = 64;
const MAX_MATRIX_DIM: u64 = 1 << 8;

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn bad(msg: &str) -> RpoError {
    RpoError::InvalidInput(format!("circuit decode: {msg}"))
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], RpoError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| bad("truncated record"))?;
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u64(&mut self) -> Result<u64, RpoError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, RpoError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn usize_bounded(&mut self, max: u64, what: &str) -> Result<usize, RpoError> {
        let v = self.u64()?;
        if v > max {
            return Err(bad(&format!("{what} {v} exceeds limit {max}")));
        }
        Ok(v as usize)
    }
}

/// Decodes the parameter block of one gate. The canonical encoding writes
/// a parameter count first; each gate name implies both the count and the
/// interpretation of the payload words (f64 bit patterns for angles, raw
/// u64 for structural counts, a dimension-prefixed element list for
/// embedded matrices).
fn decode_gate(name: &str, r: &mut Reader<'_>) -> Result<Gate, RpoError> {
    let nparams = r.u64()?;
    let want = |n: u64| -> Result<(), RpoError> {
        if nparams == n {
            Ok(())
        } else {
            Err(bad(&format!(
                "gate '{name}' carries {nparams} params, expected {n}"
            )))
        }
    };
    let gate = match name {
        "id" => Gate::I,
        "x" => Gate::X,
        "y" => Gate::Y,
        "z" => Gate::Z,
        "h" => Gate::H,
        "s" => Gate::S,
        "sdg" => Gate::Sdg,
        "t" => Gate::T,
        "tdg" => Gate::Tdg,
        "cx" => Gate::Cx,
        "cz" => Gate::Cz,
        "swap" => Gate::Swap,
        "swapz" => Gate::SwapZ,
        "ccx" => Gate::Ccx,
        "cswap" => Gate::Cswap,
        "reset" => Gate::Reset,
        "measure" => Gate::Measure,
        "rx" => {
            want(1)?;
            return Ok(Gate::Rx(r.f64()?));
        }
        "ry" => {
            want(1)?;
            return Ok(Gate::Ry(r.f64()?));
        }
        "rz" => {
            want(1)?;
            return Ok(Gate::Rz(r.f64()?));
        }
        "u1" => {
            want(1)?;
            return Ok(Gate::U1(r.f64()?));
        }
        "cp" => {
            want(1)?;
            return Ok(Gate::Cp(r.f64()?));
        }
        "u2" => {
            want(2)?;
            return Ok(Gate::U2(r.f64()?, r.f64()?));
        }
        "annot" => {
            want(2)?;
            return Ok(Gate::Annot(r.f64()?, r.f64()?));
        }
        "u3" => {
            want(3)?;
            return Ok(Gate::U3(r.f64()?, r.f64()?, r.f64()?));
        }
        "mcx" => {
            want(1)?;
            return Ok(Gate::Mcx(r.usize_bounded(MAX_QUBITS, "mcx controls")?));
        }
        "mcz" => {
            want(1)?;
            return Ok(Gate::Mcz(r.usize_bounded(MAX_QUBITS, "mcz controls")?));
        }
        "barrier" => {
            want(1)?;
            return Ok(Gate::Barrier(r.usize_bounded(MAX_QUBITS, "barrier width")?));
        }
        "cu" | "unitary" => {
            let rows = r.usize_bounded(MAX_MATRIX_DIM, "matrix rows")?;
            let cols = r.usize_bounded(MAX_MATRIX_DIM, "matrix cols")?;
            if nparams != 2 + 2 * (rows as u64) * (cols as u64) {
                return Err(bad(&format!(
                    "matrix gate '{name}' param count {nparams} disagrees with {rows}x{cols}"
                )));
            }
            if rows != cols || !rows.is_power_of_two() {
                return Err(bad(&format!("matrix gate '{name}' is {rows}x{cols}")));
            }
            let mut elems = Vec::with_capacity(rows * cols);
            for _ in 0..rows * cols {
                elems.push(C64::new(r.f64()?, r.f64()?));
            }
            let m = Matrix::from_fn(rows, cols, |i, j| elems[i * cols + j]);
            return Ok(match name {
                "cu" => Gate::Cu(m),
                _ => Gate::Unitary(m),
            });
        }
        other => return Err(bad(&format!("unknown gate name '{other}'"))),
    };
    want(0)?;
    Ok(gate)
}

/// Decodes a circuit from its [`crate::canonical_bytes`] encoding.
///
/// The round trip is exact: for any circuit `c`,
/// `decode_circuit(&canonical_bytes(&c))` reproduces `c` gate-for-gate
/// with bit-identical parameters, and re-encoding a decoded circuit
/// reproduces the input bytes.
pub fn decode_circuit(bytes: &[u8]) -> Result<Circuit, RpoError> {
    let mut r = Reader { bytes, pos: 0 };
    let num_qubits = r.usize_bounded(MAX_QUBITS, "qubit count")?;
    let len = r.usize_bounded(MAX_INSTRUCTIONS, "instruction count")?;
    let mut circuit = Circuit::new(num_qubits);
    for _ in 0..len {
        let name_len = r.usize_bounded(MAX_NAME_LEN, "gate name length")?;
        let name = std::str::from_utf8(r.take(name_len)?)
            .map_err(|_| bad("gate name is not UTF-8"))?
            .to_string();
        let gate = decode_gate(&name, &mut r)?;
        let nq = r.usize_bounded(MAX_QUBITS, "operand count")?;
        if nq != gate.num_qubits() {
            return Err(bad(&format!(
                "gate '{name}' encoded with {nq} operands, needs {}",
                gate.num_qubits()
            )));
        }
        let mut qubits = Vec::with_capacity(nq);
        for _ in 0..nq {
            let q = r.usize_bounded(MAX_QUBITS, "qubit index")?;
            if q >= num_qubits {
                return Err(bad(&format!(
                    "qubit {q} out of range for a {num_qubits}-qubit circuit"
                )));
            }
            if qubits.contains(&q) {
                return Err(bad(&format!("repeated qubit {q} in '{name}' operands")));
            }
            qubits.push(q);
        }
        circuit.push_instruction(Instruction::new(gate, qubits));
    }
    if r.pos != bytes.len() {
        return Err(bad("trailing bytes after the encoded circuit"));
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::canonical_bytes;
    use crate::testing::random_circuit;

    #[test]
    fn round_trips_random_circuits_bit_exactly() {
        for seed in 0..16 {
            let c = random_circuit(5, 40, seed);
            let bytes = canonical_bytes(&c);
            let back = decode_circuit(&bytes).expect("valid encoding decodes");
            assert_eq!(
                canonical_bytes(&back),
                bytes,
                "seed {seed}: re-encode differs"
            );
            assert_eq!(back.num_qubits(), c.num_qubits());
            assert_eq!(back.len(), c.len());
        }
    }

    #[test]
    fn round_trips_every_gate_shape() {
        let u = Matrix::from_fn(2, 2, |i, j| C64::new(i as f64 + 0.25, j as f64 - 0.5));
        let big = Matrix::from_fn(4, 4, |i, j| C64::new(0.1 * i as f64, 0.2 * j as f64));
        let mut c = Circuit::new(4);
        c.h(0).x(1).cx(0, 1).cz(1, 2).swap(2, 3);
        c.rx(0.123456789012345, 0)
            .ry(-1.5e-300, 1)
            .rz(f64::MIN_POSITIVE, 2);
        c.push(Gate::U2(0.1, 0.2), &[0]);
        c.push(Gate::U3(0.1, 0.2, 0.3), &[1]);
        c.push(Gate::Cp(2.5), &[0, 2]);
        c.push(Gate::Mcx(2), &[0, 1, 2]);
        c.push(Gate::Mcz(3), &[0, 1, 2, 3]);
        c.push(Gate::Barrier(2), &[1, 3]);
        c.push(Gate::Annot(0.7, -0.3), &[2]);
        c.push(Gate::Cu(u), &[0, 3]);
        c.push(Gate::Unitary(big), &[1, 2]);
        c.push(Gate::SwapZ, &[0, 1]);
        c.push(Gate::Ccx, &[0, 1, 2]);
        c.push(Gate::Cswap, &[1, 2, 3]);
        c.reset(0);
        c.measure_all();
        let bytes = canonical_bytes(&c);
        let back = decode_circuit(&bytes).expect("every gate shape decodes");
        assert_eq!(canonical_bytes(&back), bytes);
    }

    #[test]
    fn corrupt_inputs_are_typed_errors_never_panics() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).rz(0.5, 2).measure_all();
        let bytes = canonical_bytes(&c);
        // Every truncation of a valid encoding must fail cleanly (or, for
        // the empty-tail cases, still decode a shorter valid prefix — but
        // never panic).
        for cut in 0..bytes.len() {
            let _ = decode_circuit(&bytes[..cut]);
        }
        // Every single-byte corruption must fail cleanly or decode to
        // *something* — never panic, never hang.
        for i in 0..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xff;
            let _ = decode_circuit(&b);
        }
        // Specific defects map to typed errors.
        assert!(decode_circuit(&[]).is_err());
        assert!(decode_circuit(&[1, 2, 3]).is_err());
        let mut huge = Vec::new();
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            decode_circuit(&huge),
            Err(RpoError::InvalidInput(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut c = Circuit::new(1);
        c.h(0);
        let mut bytes = canonical_bytes(&c);
        bytes.push(0);
        assert!(decode_circuit(&bytes).is_err());
    }

    #[test]
    fn out_of_range_qubits_are_rejected() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let bytes = canonical_bytes(&c);
        // Shrink the qubit count in the header below the operands' range.
        let mut b = bytes.clone();
        b[..8].copy_from_slice(&1u64.to_le_bytes());
        assert!(decode_circuit(&b).is_err());
    }
}
