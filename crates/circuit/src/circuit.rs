//! The circuit container and its builder API.

use crate::gate::Gate;
use std::collections::BTreeMap;
use std::fmt;

/// One gate application: a [`Gate`] plus the qubit indices it acts on.
#[derive(Clone, Debug, PartialEq)]
pub struct Instruction {
    /// The gate being applied.
    pub gate: Gate,
    /// Qubit arguments, in the gate's local order (controls before target;
    /// argument 0 is the least-significant local bit).
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates an instruction, validating arity and qubit distinctness.
    ///
    /// # Panics
    ///
    /// Panics if the number of qubits does not match the gate's arity or if
    /// a qubit is repeated.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(
            gate.num_qubits(),
            qubits.len(),
            "gate {gate} expects {} qubits, got {:?}",
            gate.num_qubits(),
            qubits
        );
        for (i, q) in qubits.iter().enumerate() {
            for r in &qubits[i + 1..] {
                assert_ne!(q, r, "duplicate qubit {q} in {gate}");
            }
        }
        Instruction { gate, qubits }
    }
}

/// Aggregate gate statistics for a circuit (the metrics reported by the
/// paper's tables: CNOT count, single-qubit gate count, total count).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GateCounts {
    /// Number of `cx` gates.
    pub cx: usize,
    /// Number of single-qubit *gates* (directives, resets and measures are
    /// excluded).
    pub single_qubit: usize,
    /// Number of two-qubit gates other than `cx` (cz, cp, swap, swapz, cu).
    pub other_two_qubit: usize,
    /// Number of gates on three or more qubits.
    pub multi_qubit: usize,
    /// Total gates (excluding directives, resets and measures).
    pub total: usize,
}

/// [`Circuit::gate_counts`] over a raw instruction slice — shared with the
/// DAG IR so both report identical statistics.
pub fn gate_counts_of(instructions: &[Instruction]) -> GateCounts {
    gate_counts_over(instructions)
}

/// [`gate_counts_of`] over any instruction iterator (the DAG IR counts its
/// slab without materializing a slice).
pub fn gate_counts_over<'a>(instructions: impl IntoIterator<Item = &'a Instruction>) -> GateCounts {
    let mut c = GateCounts::default();
    for inst in instructions {
        if inst.gate.is_directive() || matches!(inst.gate, Gate::Reset | Gate::Measure) {
            continue;
        }
        c.total += 1;
        match inst.gate.num_qubits() {
            1 => c.single_qubit += 1,
            2 => {
                if matches!(inst.gate, Gate::Cx) {
                    c.cx += 1;
                } else {
                    c.other_two_qubit += 1;
                }
            }
            _ => c.multi_qubit += 1,
        }
    }
    c
}

/// A quantum circuit: an ordered list of [`Instruction`]s over `n` qubits.
///
/// The instruction list is a valid topological order of the circuit DAG by
/// construction; passes that need explicit dependency structure use
/// [`crate::dag::Dag`].
///
/// # Examples
///
/// ```
/// use qc_circuit::{Circuit, Gate};
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 1).ccx(0, 1, 2).measure_all();
/// assert_eq!(c.num_qubits(), 3);
/// assert_eq!(c.gate_counts().cx, 1);
/// assert_eq!(c.gate_counts().multi_qubit, 1);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits, all starting in
    /// |0⟩.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            instructions: Vec::new(),
        }
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The instruction sequence (a topological order of the circuit DAG).
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Number of instructions, including directives.
    #[inline]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` when the circuit has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Appends a gate on the given qubits.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is out of range, the arity mismatches, or a
    /// qubit repeats.
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        for &q in qubits {
            assert!(
                q < self.num_qubits,
                "qubit {q} out of range for {}-qubit circuit",
                self.num_qubits
            );
        }
        self.instructions
            .push(Instruction::new(gate, qubits.to_vec()));
        self
    }

    /// Appends a prebuilt instruction.
    pub fn push_instruction(&mut self, inst: Instruction) -> &mut Self {
        let qs = inst.qubits.clone();
        self.push(inst.gate, &qs)
    }

    /// Appends all instructions of `other` (which must fit in this circuit).
    pub fn extend(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot extend with a wider circuit"
        );
        for inst in &other.instructions {
            self.instructions.push(inst.clone());
        }
        self
    }

    /// Appends `other` with its qubit `i` mapped to `mapping[i]`.
    ///
    /// # Panics
    ///
    /// Panics if the mapping is too short or maps out of range.
    pub fn compose(&mut self, other: &Circuit, mapping: &[usize]) -> &mut Self {
        assert!(
            mapping.len() >= other.num_qubits,
            "mapping must cover all qubits of the composed circuit"
        );
        for inst in &other.instructions {
            let qs: Vec<usize> = inst.qubits.iter().map(|&q| mapping[q]).collect();
            self.push(inst.gate.clone(), &qs);
        }
        self
    }

    /// The inverse circuit: gates reversed and individually inverted.
    ///
    /// Returns `None` when the circuit contains a non-invertible instruction
    /// (reset, measure, annotation).
    pub fn inverse(&self) -> Option<Circuit> {
        let mut out = Circuit::new(self.num_qubits);
        for inst in self.instructions.iter().rev() {
            if matches!(inst.gate, Gate::Barrier(_)) {
                out.push(inst.gate.clone(), &inst.qubits);
                continue;
            }
            let inv = inst.gate.inverse()?;
            let mut qubits = inst.qubits.clone();
            // SWAPZ's inverse is SWAPZ with its qubit arguments exchanged.
            if matches!(inst.gate, Gate::SwapZ) {
                qubits.reverse();
            }
            out.push(inv, &qubits);
        }
        Some(out)
    }

    /// Gate statistics (excluding directives, resets and measures).
    pub fn gate_counts(&self) -> GateCounts {
        gate_counts_of(&self.instructions)
    }

    /// Number of occurrences of gates with the given name.
    pub fn count_name(&self, name: &str) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.name() == name)
            .count()
    }

    /// Circuit depth: the longest chain of non-directive instructions over
    /// any qubit (the metric reported in the paper's Table V), with resets
    /// and measures counted as operations.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        let mut max = 0;
        for inst in &self.instructions {
            if inst.gate.is_directive() {
                continue;
            }
            let d = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &inst.qubits {
                level[q] = d;
            }
            max = max.max(d);
        }
        max
    }

    /// Histogram of gate names.
    pub fn gate_histogram(&self) -> BTreeMap<&'static str, usize> {
        let mut h = BTreeMap::new();
        for inst in &self.instructions {
            *h.entry(inst.gate.name()).or_insert(0) += 1;
        }
        h
    }

    /// Replaces the instruction list wholesale (used by transpiler passes).
    pub fn set_instructions(&mut self, instructions: Vec<Instruction>) {
        self.instructions = instructions;
    }

    /// Consumes the circuit, returning its instruction list.
    pub fn into_instructions(self) -> Vec<Instruction> {
        self.instructions
    }

    /// Grows the circuit to at least `n` qubits.
    pub fn expand_qubits(&mut self, n: usize) {
        self.num_qubits = self.num_qubits.max(n);
    }

    /// The sorted list of qubits touched by at least one non-directive
    /// instruction (barriers and annotations alone do not make a wire
    /// "used").
    pub fn used_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.num_qubits];
        for inst in &self.instructions {
            if inst.gate.is_directive() {
                continue;
            }
            for &q in &inst.qubits {
                used[q] = true;
            }
        }
        (0..self.num_qubits).filter(|&q| used[q]).collect()
    }

    /// Re-indexes the circuit onto only its used wires. Returns the compact
    /// circuit and the mapping `old_of_new[new] = old` — the tool that makes
    /// backend-width circuits (e.g. a 3-qubit job routed onto a 53-qubit
    /// device) simulable.
    pub fn compacted(&self) -> (Circuit, Vec<usize>) {
        let old_of_new = self.used_qubits();
        let mut new_of_old = vec![usize::MAX; self.num_qubits];
        for (new, &old) in old_of_new.iter().enumerate() {
            new_of_old[old] = new;
        }
        let mut out = Circuit::new(old_of_new.len().max(1));
        for inst in &self.instructions {
            let qs: Vec<usize> = inst.qubits.iter().map(|&q| new_of_old[q]).collect();
            if inst.gate.is_directive() {
                // Directives may reference unused wires; rebuild them over
                // the surviving ones (barriers shrink, annotations on dead
                // wires drop).
                let qs: Vec<usize> = qs.into_iter().filter(|&q| q != usize::MAX).collect();
                if qs.is_empty() {
                    continue;
                }
                if let Gate::Barrier(_) = inst.gate {
                    out.push(Gate::Barrier(qs.len()), &qs);
                } else {
                    out.push(inst.gate.clone(), &qs);
                }
                continue;
            }
            out.push(inst.gate.clone(), &qs);
        }
        (out, old_of_new)
    }

    // ---- builder methods -------------------------------------------------

    /// Appends an identity gate.
    pub fn id(&mut self, q: usize) -> &mut Self {
        self.push(Gate::I, &[q])
    }
    /// Appends a Pauli X.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X, &[q])
    }
    /// Appends a Pauli Y.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y, &[q])
    }
    /// Appends a Pauli Z.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z, &[q])
    }
    /// Appends a Hadamard.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H, &[q])
    }
    /// Appends an S gate.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S, &[q])
    }
    /// Appends an S† gate.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Sdg, &[q])
    }
    /// Appends a T gate.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::T, &[q])
    }
    /// Appends a T† gate.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Tdg, &[q])
    }
    /// Appends an X-rotation.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Rx(theta), &[q])
    }
    /// Appends a Y-rotation.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Ry(theta), &[q])
    }
    /// Appends a Z-rotation.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.push(Gate::Rz(theta), &[q])
    }
    /// Appends a u1 phase gate.
    pub fn u1(&mut self, lam: f64, q: usize) -> &mut Self {
        self.push(Gate::U1(lam), &[q])
    }
    /// Appends a u2 gate.
    pub fn u2(&mut self, phi: f64, lam: f64, q: usize) -> &mut Self {
        self.push(Gate::U2(phi, lam), &[q])
    }
    /// Appends a u3 gate.
    pub fn u3(&mut self, theta: f64, phi: f64, lam: f64, q: usize) -> &mut Self {
        self.push(Gate::U3(theta, phi, lam), &[q])
    }
    /// Appends a CNOT with the given control and target.
    pub fn cx(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cx, &[control, target])
    }
    /// Appends a controlled-Z.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cz, &[a, b])
    }
    /// Appends a controlled-phase gate.
    pub fn cp(&mut self, lam: f64, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Cp(lam), &[a, b])
    }
    /// Appends a SWAP.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap, &[a, b])
    }
    /// Appends a SWAPZ; `qz` is the qubit the optimization assumes is |0⟩.
    pub fn swapz(&mut self, qz: usize, other: usize) -> &mut Self {
        self.push(Gate::SwapZ, &[qz, other])
    }
    /// Appends a Toffoli gate.
    pub fn ccx(&mut self, c1: usize, c2: usize, target: usize) -> &mut Self {
        self.push(Gate::Ccx, &[c1, c2, target])
    }
    /// Appends a Fredkin (controlled-SWAP) gate.
    pub fn cswap(&mut self, control: usize, t1: usize, t2: usize) -> &mut Self {
        self.push(Gate::Cswap, &[control, t1, t2])
    }
    /// Appends a multi-controlled NOT over `controls` with `target`.
    pub fn mcx(&mut self, controls: &[usize], target: usize) -> &mut Self {
        let mut qs = controls.to_vec();
        qs.push(target);
        self.push(Gate::Mcx(controls.len()), &qs)
    }
    /// Appends a multi-controlled Z over `controls` with `target`.
    pub fn mcz(&mut self, controls: &[usize], target: usize) -> &mut Self {
        let mut qs = controls.to_vec();
        qs.push(target);
        self.push(Gate::Mcz(controls.len()), &qs)
    }
    /// Appends a controlled single-qubit unitary.
    pub fn cu(&mut self, u: qc_math::Matrix, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cu(u), &[control, target])
    }
    /// Appends a reset to |0⟩.
    pub fn reset(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Reset, &[q])
    }
    /// Appends a measurement.
    pub fn measure(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Measure, &[q])
    }
    /// Measures every qubit.
    pub fn measure_all(&mut self) -> &mut Self {
        for q in 0..self.num_qubits {
            self.measure(q);
        }
        self
    }
    /// Appends a barrier across all qubits.
    pub fn barrier(&mut self) -> &mut Self {
        let qs: Vec<usize> = (0..self.num_qubits).collect();
        self.push(Gate::Barrier(self.num_qubits), &qs)
    }
    /// Appends an `ANNOT(θ, φ)` pure-state annotation (Section VI-C).
    pub fn annot(&mut self, theta: f64, phi: f64, q: usize) -> &mut Self {
        self.push(Gate::Annot(theta, phi), &[q])
    }
    /// Annotates a "clean" ancilla qubit as |0⟩ — shorthand for
    /// `annot(0, 0, q)` as used in the Grover experiments (Fig. 7).
    pub fn annot_zero(&mut self, q: usize) -> &mut Self {
        self.annot(0.0, 0.0, q)
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit[{} qubits]:", self.num_qubits)?;
        for inst in &self.instructions {
            writeln!(f, "  {} {:?}", inst.gate, inst.qubits)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unitary::circuit_unitary;
    use qc_math::Matrix;

    #[test]
    fn builder_chains_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cx(0, 1)
            .t(1)
            .cz(1, 2)
            .ccx(0, 1, 2)
            .barrier()
            .measure_all();
        let counts = c.gate_counts();
        assert_eq!(counts.cx, 1);
        assert_eq!(counts.single_qubit, 2);
        assert_eq!(counts.other_two_qubit, 1);
        assert_eq!(counts.multi_qubit, 1);
        assert_eq!(counts.total, 5);
    }

    #[test]
    fn depth_ignores_directives() {
        let mut c = Circuit::new(2);
        c.h(0).barrier().h(0).annot_zero(1).h(1);
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn depth_tracks_parallelism() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // parallel layer
        assert_eq!(c.depth(), 1);
        c.cx(0, 1); // serializes 0 and 1
        assert_eq!(c.depth(), 2);
        c.cx(1, 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_rejects_out_of_range() {
        Circuit::new(2).cx(0, 5);
    }

    #[test]
    #[should_panic(expected = "duplicate qubit")]
    fn push_rejects_duplicate_qubits() {
        Circuit::new(2).cx(1, 1);
    }

    #[test]
    fn inverse_undoes_circuit() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).s(1).swap(0, 1);
        let inv = c.inverse().expect("invertible");
        let mut both = c.clone();
        both.extend(&inv);
        let u = circuit_unitary(&both);
        assert!(u.equal_up_to_global_phase(&Matrix::identity(4), 1e-10));
    }

    #[test]
    fn inverse_of_swapz_reverses_arguments() {
        let mut c = Circuit::new(2);
        c.swapz(0, 1);
        let inv = c.inverse().expect("invertible");
        assert_eq!(inv.instructions()[0].qubits, vec![1, 0]);
        let mut both = c.clone();
        both.extend(&inv);
        let u = circuit_unitary(&both);
        assert!(u.equal_up_to_global_phase(&Matrix::identity(4), 1e-10));
    }

    #[test]
    fn inverse_fails_on_measurement() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        assert!(c.inverse().is_none());
    }

    #[test]
    fn compose_remaps_qubits() {
        let mut inner = Circuit::new(2);
        inner.cx(0, 1);
        let mut outer = Circuit::new(4);
        outer.compose(&inner, &[3, 1]);
        assert_eq!(outer.instructions()[0].qubits, vec![3, 1]);
    }

    #[test]
    fn compacted_reindexes_used_wires() {
        let mut c = Circuit::new(10);
        c.h(2).cx(2, 7).measure(7);
        let (compact, old_of_new) = c.compacted();
        assert_eq!(compact.num_qubits(), 2);
        assert_eq!(old_of_new, vec![2, 7]);
        assert_eq!(compact.instructions()[1].qubits, vec![0, 1]);
        assert_eq!(c.used_qubits(), vec![2, 7]);
    }

    #[test]
    fn compacted_rebuilds_barriers() {
        let mut c = Circuit::new(5);
        c.h(1).barrier().cx(1, 3);
        let (compact, _) = c.compacted();
        // The barrier now spans only the two used wires.
        let b = compact
            .instructions()
            .iter()
            .find(|i| i.gate.name() == "barrier")
            .unwrap();
        assert_eq!(b.qubits.len(), 2);
    }

    #[test]
    fn histogram_and_count_name() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        assert_eq!(c.count_name("h"), 2);
        assert_eq!(c.gate_histogram()["cx"], 1);
    }
}
