//! A lightweight dependency-DAG view of a circuit.
//!
//! The instruction list of a [`Circuit`] is already a topological order;
//! [`Dag`] adds the wire structure on top of it: per-node predecessors and
//! successors along qubit wires, a ready-set scheduler (used by the routing
//! pass), maximal single-qubit runs (used by `Optimize1qGates`), and
//! two-qubit block collection (the `Collect2qBlocks` analogue).

use crate::blocks::{Block, BlockTracker, Membership};
use crate::circuit::{Circuit, Instruction};

/// Dependency DAG over the instructions of a circuit.
#[derive(Clone, Debug)]
pub struct Dag {
    num_qubits: usize,
    nodes: Vec<Instruction>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
}

/// A collected two-qubit block: a maximal run of gates that act only on one
/// pair of qubits (Qiskit's `Collect2qBlocks`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoQubitBlock {
    /// The two qubits spanned by the block (unordered; stored ascending).
    pub qubits: (usize, usize),
    /// Node indices in instruction order. At least one two-qubit gate.
    pub nodes: Vec<usize>,
}

impl Dag {
    /// Builds the DAG from a circuit.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        let nodes: Vec<Instruction> = circuit.instructions().to_vec();
        let n = nodes.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        let mut last_on_wire: Vec<Option<usize>> = vec![None; circuit.num_qubits()];
        for (i, inst) in nodes.iter().enumerate() {
            for &q in &inst.qubits {
                if let Some(p) = last_on_wire[q] {
                    if !preds[i].contains(&p) {
                        preds[i].push(p);
                        succs[p].push(i);
                    }
                }
                last_on_wire[q] = Some(i);
            }
        }
        Dag {
            num_qubits: circuit.num_qubits(),
            nodes,
            preds,
            succs,
        }
    }

    /// Number of qubits of the underlying circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The instructions, indexed by node id (instruction order).
    pub fn nodes(&self) -> &[Instruction] {
        &self.nodes
    }

    /// Wire predecessors of a node.
    pub fn preds(&self, node: usize) -> &[usize] {
        &self.preds[node]
    }

    /// Wire successors of a node.
    pub fn succs(&self, node: usize) -> &[usize] {
        &self.succs[node]
    }

    /// Creates a scheduler whose ready set starts at the DAG's sources.
    pub fn scheduler(&self) -> Scheduler<'_> {
        let remaining_preds: Vec<usize> = self.preds.iter().map(|p| p.len()).collect();
        let ready: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| remaining_preds[i] == 0)
            .collect();
        Scheduler {
            dag: self,
            remaining_preds,
            ready,
        }
    }

    /// Maximal runs of consecutive single-qubit *unitary* gates on the same
    /// wire. Directives, resets and measures break runs, as does any
    /// multi-qubit gate.
    pub fn single_qubit_runs(&self) -> Vec<Vec<usize>> {
        let mut runs: Vec<Vec<usize>> = Vec::new();
        let mut open: Vec<Option<usize>> = vec![None; self.num_qubits]; // run index per wire
        for (i, inst) in self.nodes.iter().enumerate() {
            let one_q_unitary = inst.qubits.len() == 1 && inst.gate.is_unitary_gate();
            if one_q_unitary {
                let q = inst.qubits[0];
                match open[q] {
                    Some(r) => runs[r].push(i),
                    None => {
                        runs.push(vec![i]);
                        open[q] = Some(runs.len() - 1);
                    }
                }
            } else {
                for &q in &inst.qubits {
                    open[q] = None;
                }
            }
        }
        runs
    }

    /// Collects maximal blocks of unitary gates confined to at most
    /// `max_arity` qubits, anchored by at least one multi-qubit gate —
    /// single-qubit gates preceding a block on its wires are absorbed into
    /// it. Blocks are returned sorted by first node index.
    ///
    /// The membership logic is [`BlockTracker`] — the same machine the
    /// fusion planner uses to grow dense kernel blocks in-stream — so
    /// `ConsolidateBlocks`, QPO's block rewrite and the planner all agree
    /// on what constitutes a foldable neighborhood.
    pub fn collect_blocks(&self, max_arity: usize) -> Vec<Block> {
        let mut tracker = BlockTracker::sealing(self.num_qubits, max_arity);
        // Pending 1q gates per wire, waiting for a multi-qubit anchor.
        let mut pending: Vec<Vec<usize>> = vec![Vec::new(); self.num_qubits];
        // Node lists per tracker block id.
        let mut nodes_of: Vec<Vec<usize>> = Vec::new();
        for (i, inst) in self.nodes.iter().enumerate() {
            let unitary = inst.gate.is_unitary_gate() && !inst.gate.is_directive();
            if !unitary || inst.qubits.len() > max_arity {
                // Directive, non-unitary, or too wide: breaks blocks and
                // pending runs on all touched wires.
                for &q in &inst.qubits {
                    pending[q].clear();
                }
                tracker.touch(&inst.qubits, i);
                continue;
            }
            if inst.qubits.len() == 1 {
                let q = inst.qubits[0];
                match tracker.membership(&inst.qubits) {
                    Membership::Join { block, new_qubits } if new_qubits.is_empty() => {
                        nodes_of[block].push(i)
                    }
                    _ => pending[q].push(i),
                }
                continue;
            }
            match tracker.membership(&inst.qubits) {
                Membership::Join { block, new_qubits } => {
                    for &q in &new_qubits {
                        nodes_of[block].append(&mut pending[q]);
                    }
                    tracker.extend(block, &new_qubits);
                    nodes_of[block].push(i);
                }
                Membership::Outside => {
                    let block = tracker.open(&inst.qubits, i);
                    let mut nodes = Vec::new();
                    for &q in &inst.qubits {
                        nodes.append(&mut pending[q]);
                    }
                    nodes.push(i);
                    debug_assert_eq!(block, nodes_of.len());
                    nodes_of.push(nodes);
                }
            }
        }
        let mut blocks: Vec<Block> = nodes_of
            .into_iter()
            .enumerate()
            .map(|(id, mut nodes)| {
                nodes.sort_unstable();
                Block {
                    qubits: tracker.block_qubits(id).to_vec(),
                    nodes,
                }
            })
            .collect();
        blocks.sort_by_key(|b| b.nodes[0]);
        blocks
    }

    /// Collects maximal two-qubit blocks: groups of gates confined to one
    /// pair of qubits, anchored by at least one two-qubit gate (the
    /// `Collect2qBlocks` analogue; [`Dag::collect_blocks`] with arity 2).
    pub fn collect_two_qubit_blocks(&self) -> Vec<TwoQubitBlock> {
        self.collect_blocks(2)
            .into_iter()
            .map(|b| TwoQubitBlock {
                qubits: (b.qubits[0].min(b.qubits[1]), b.qubits[0].max(b.qubits[1])),
                nodes: b.nodes,
            })
            .collect()
    }
}

/// Incremental topological scheduler over a [`Dag`], used by routing: nodes
/// become ready once all their wire predecessors have been executed.
#[derive(Clone, Debug)]
pub struct Scheduler<'a> {
    dag: &'a Dag,
    remaining_preds: Vec<usize>,
    ready: Vec<usize>,
}

impl<'a> Scheduler<'a> {
    /// Nodes whose predecessors have all executed.
    pub fn ready(&self) -> &[usize] {
        &self.ready
    }

    /// Returns `true` when every node has been executed.
    pub fn is_done(&self) -> bool {
        self.ready.is_empty()
    }

    /// Marks `node` executed, removing it from the ready set and promoting
    /// any successors that become ready.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not currently ready.
    pub fn execute(&mut self, node: usize) {
        let pos = self
            .ready
            .iter()
            .position(|&n| n == node)
            .expect("node must be ready to execute");
        self.ready.swap_remove(pos);
        for &s in self.dag.succs(node) {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                self.ready.push(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn wire_structure() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).h(2);
        let dag = Dag::from_circuit(&c);
        assert_eq!(dag.preds(0), &[] as &[usize]);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.preds(2), &[1]);
        assert_eq!(dag.preds(3), &[2]);
        assert_eq!(dag.succs(0), &[1]);
    }

    #[test]
    fn multi_wire_pred_deduplicated() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        let dag = Dag::from_circuit(&c);
        // Second cx depends on first through both wires but only once.
        assert_eq!(dag.preds(1), &[0]);
    }

    #[test]
    fn scheduler_executes_in_dependency_order() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cx(0, 1).cx(1, 2);
        let dag = Dag::from_circuit(&c);
        let mut s = dag.scheduler();
        let mut order = Vec::new();
        while !s.is_done() {
            let n = s.ready()[0];
            order.push(n);
            s.execute(n);
        }
        assert_eq!(order.len(), 4);
        // cx(0,1) must come after both h gates; cx(1,2) after cx(0,1).
        let pos = |n: usize| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(2) > pos(0) && pos(2) > pos(1));
        assert!(pos(3) > pos(2));
    }

    #[test]
    fn single_qubit_runs_split_by_two_qubit_gates() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).s(0).sdg(1).h(1);
        let dag = Dag::from_circuit(&c);
        let runs = dag.single_qubit_runs();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0], vec![0, 1]); // h,t on qubit 0
        assert_eq!(runs[1], vec![3]); // s on qubit 0 after cx
        assert_eq!(runs[2], vec![4, 5]); // sdg,h on qubit 1
    }

    #[test]
    fn runs_broken_by_directives_and_measure() {
        let mut c = Circuit::new(1);
        c.h(0).barrier().h(0).measure(0);
        let dag = Dag::from_circuit(&c);
        let runs = dag.single_qubit_runs();
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn two_qubit_block_collection_basic() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(0, 1).cx(1, 2);
        let dag = Dag::from_circuit(&c);
        let blocks = dag.collect_two_qubit_blocks();
        assert_eq!(blocks.len(), 2);
        // First block: h(0) absorbed + cx, t, cx on (0,1).
        assert_eq!(blocks[0].qubits, (0, 1));
        assert_eq!(blocks[0].nodes, vec![0, 1, 2, 3]);
        // Second block: cx(1,2).
        assert_eq!(blocks[1].qubits, (1, 2));
        assert_eq!(blocks[1].nodes, vec![4]);
    }

    #[test]
    fn blocks_broken_by_three_qubit_gate() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).ccx(0, 1, 2).cx(0, 1);
        let dag = Dag::from_circuit(&c);
        let blocks = dag.collect_two_qubit_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].nodes, vec![0]);
        assert_eq!(blocks[1].nodes, vec![2]);
    }

    #[test]
    fn trailing_one_qubit_gates_stay_in_block() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(0).h(1);
        let dag = Dag::from_circuit(&c);
        let blocks = dag.collect_two_qubit_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].nodes, vec![0, 1, 2]);
    }

    #[test]
    fn lone_one_qubit_gates_form_no_block() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let dag = Dag::from_circuit(&c);
        assert!(dag.collect_two_qubit_blocks().is_empty());
    }
}
