//! The transpiler's shared mutable IR: a dependency-DAG view of a circuit.
//!
//! The instruction list of a [`Circuit`] is already a topological order;
//! [`Dag`] adds the wire structure on top of it: per-node predecessors and
//! successors along qubit wires, a ready-set scheduler (used by the routing
//! pass), maximal single-qubit runs (used by `Optimize1qGates`), and
//! two-qubit block collection (the `Collect2qBlocks` analogue).
//!
//! Since the DAG-native pass-manager refactor the `Dag` is also *mutable*:
//! passes batch their rewrites into a [`DagEdit`] (node removal,
//! replacement by an expansion, whole-stream reconstruction) and
//! [`Dag::apply`] splices them in, renumbering nodes to keep the
//! `node index == program position` invariant. Every mutation bumps a
//! monotone generation counter and stamps the **wires** the edit touched
//! ([`Dag::wire_gen`]), which is what lets cached analyses (block
//! membership, per-wire state automata) invalidate only the wires a pass
//! actually rewrote. The [`ChangeReport`] returned by `apply` is the
//! currency of the change-driven fixed-point loop: a pass that reports no
//! rewrites is skipped until another pass dirties a wire.
//!
//! [`Dag::from_circuit`] and [`Dag::to_circuit`] are the *only* sanctioned
//! Circuit↔Dag boundary and each bumps a thread-local conversion counter
//! ([`conversion_counts`]) so tests can assert a pipeline converts exactly
//! once in each direction.

use crate::blocks::{Block, BlockTracker, Membership};
use crate::circuit::{Circuit, GateCounts, Instruction};
use std::cell::Cell;

thread_local! {
    static CIRCUIT_TO_DAG: Cell<usize> = const { Cell::new(0) };
    static DAG_TO_CIRCUIT: Cell<usize> = const { Cell::new(0) };
}

/// `(circuit→dag, dag→circuit)` conversion counts for the current thread
/// since the last [`reset_conversion_counts`].
pub fn conversion_counts() -> (usize, usize) {
    (CIRCUIT_TO_DAG.get(), DAG_TO_CIRCUIT.get())
}

/// Zeroes the thread-local conversion counters.
pub fn reset_conversion_counts() {
    CIRCUIT_TO_DAG.set(0);
    DAG_TO_CIRCUIT.set(0);
}

/// A set of wires (qubit indices), the unit of analysis invalidation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSet {
    bits: Vec<bool>,
}

impl WireSet {
    /// The empty set over `num_qubits` wires.
    pub fn empty(num_qubits: usize) -> Self {
        WireSet {
            bits: vec![false; num_qubits],
        }
    }

    /// The full set over `num_qubits` wires.
    pub fn full(num_qubits: usize) -> Self {
        WireSet {
            bits: vec![true; num_qubits],
        }
    }

    /// Number of wires the set ranges over.
    pub fn num_qubits(&self) -> usize {
        self.bits.len()
    }

    /// Adds a wire.
    pub fn insert(&mut self, q: usize) {
        if q >= self.bits.len() {
            self.bits.resize(q + 1, false);
        }
        self.bits[q] = true;
    }

    /// Whether the set contains `q`.
    pub fn contains(&self, q: usize) -> bool {
        self.bits.get(q).copied().unwrap_or(false)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        !self.bits.iter().any(|&b| b)
    }

    /// Removes every wire.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
    }

    /// Adds every wire of `other`.
    pub fn union(&mut self, other: &WireSet) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), false);
        }
        for (q, &b) in other.bits.iter().enumerate() {
            if b {
                self.bits[q] = true;
            }
        }
    }

    /// The contained wires, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(q, &b)| b.then_some(q))
    }
}

/// What a pass did to the DAG: how many nodes it rewrote and which wires
/// those rewrites touched. The fixed-point driver unions reports into the
/// other passes' dirty sets; a report with zero rewrites dirties nothing.
#[derive(Clone, Debug)]
pub struct ChangeReport {
    /// Number of edit operations applied (removals + replacements).
    pub rewrites: usize,
    /// Wires touched by the rewrites (old and new instructions' qubits).
    pub touched: WireSet,
}

impl ChangeReport {
    /// A report of no changes.
    pub fn none(num_qubits: usize) -> Self {
        ChangeReport {
            rewrites: 0,
            touched: WireSet::empty(num_qubits),
        }
    }

    /// Whether anything changed.
    pub fn changed(&self) -> bool {
        self.rewrites > 0
    }

    /// Accumulates `other` into this report.
    pub fn merge(&mut self, other: &ChangeReport) {
        self.rewrites += other.rewrites;
        self.touched.union(&other.touched);
    }
}

/// One batched mutation of a [`Dag`]: node removals and replacements
/// (splice-in of decompositions), applied in one renumbering pass by
/// [`Dag::apply`].
#[derive(Clone, Debug, Default)]
pub struct DagEdit {
    ops: Vec<(usize, Option<Vec<Instruction>>)>,
}

impl DagEdit {
    /// An empty edit.
    pub fn new() -> Self {
        DagEdit::default()
    }

    /// Removes node `node`.
    pub fn remove(&mut self, node: usize) {
        self.ops.push((node, None));
    }

    /// Replaces node `node` with `insts` (empty = removal) spliced in at
    /// its position.
    pub fn replace(&mut self, node: usize, insts: Vec<Instruction>) {
        self.ops.push((node, Some(insts)));
    }

    /// Whether the edit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of edit operations recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
}

/// Dependency DAG over the instructions of a circuit — the transpiler's
/// shared mutable IR (see the module docs).
#[derive(Clone, Debug)]
pub struct Dag {
    num_qubits: usize,
    nodes: Vec<Instruction>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    /// Monotone mutation counter; bumped by every non-empty [`Dag::apply`].
    generation: u64,
    /// Per-wire stamp of the generation that last touched the wire.
    wire_gen: Vec<u64>,
}

/// A collected two-qubit block: a maximal run of gates that act only on one
/// pair of qubits (Qiskit's `Collect2qBlocks`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoQubitBlock {
    /// The two qubits spanned by the block (unordered; stored ascending).
    pub qubits: (usize, usize),
    /// Node indices in instruction order. At least one two-qubit gate.
    pub nodes: Vec<usize>,
}

/// Wire predecessor/successor lists for a node sequence.
fn build_links(nodes: &[Instruction], num_qubits: usize) -> (Vec<Vec<usize>>, Vec<Vec<usize>>) {
    let n = nodes.len();
    let mut preds = vec![Vec::new(); n];
    let mut succs = vec![Vec::new(); n];
    let mut last_on_wire: Vec<Option<usize>> = vec![None; num_qubits];
    for (i, inst) in nodes.iter().enumerate() {
        for &q in &inst.qubits {
            if let Some(p) = last_on_wire[q] {
                if !preds[i].contains(&p) {
                    preds[i].push(p);
                    succs[p].push(i);
                }
            }
            last_on_wire[q] = Some(i);
        }
    }
    (preds, succs)
}

impl Dag {
    /// Builds the DAG from a circuit, bumping the thread-local
    /// circuit→dag conversion counter.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        CIRCUIT_TO_DAG.set(CIRCUIT_TO_DAG.get() + 1);
        let nodes: Vec<Instruction> = circuit.instructions().to_vec();
        let (preds, succs) = build_links(&nodes, circuit.num_qubits());
        Dag {
            num_qubits: circuit.num_qubits(),
            nodes,
            preds,
            succs,
            generation: 1,
            wire_gen: vec![1; circuit.num_qubits()],
        }
    }

    /// Flattens the DAG back into a circuit (the nodes already are a
    /// topological order), bumping the thread-local dag→circuit conversion
    /// counter.
    pub fn to_circuit(&self) -> Circuit {
        DAG_TO_CIRCUIT.set(DAG_TO_CIRCUIT.get() + 1);
        let mut c = Circuit::new(self.num_qubits);
        c.set_instructions(self.nodes.clone());
        c
    }

    /// Number of qubits of the underlying circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The monotone mutation counter (1 at construction).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The generation that last touched wire `q` — the key cached analyses
    /// compare against to invalidate per wire.
    pub fn wire_gen(&self, q: usize) -> u64 {
        self.wire_gen[q]
    }

    /// Gate statistics over the current nodes (same accounting as
    /// [`Circuit::gate_counts`]).
    pub fn gate_counts(&self) -> GateCounts {
        crate::circuit::gate_counts_of(&self.nodes)
    }

    /// Applies a batched edit: removals and replacements splice in at
    /// their node's position, nodes renumber to the new program order, and
    /// the wires of every removed, replaced or inserted instruction are
    /// stamped with a fresh generation.
    ///
    /// # Panics
    ///
    /// Panics if an edit references a node twice or out of range, or if a
    /// replacement instruction uses an out-of-range qubit.
    pub fn apply(&mut self, edit: DagEdit) -> ChangeReport {
        if edit.is_empty() {
            return ChangeReport::none(self.num_qubits);
        }
        let mut by_node: Vec<Option<Option<Vec<Instruction>>>> = vec![None; self.nodes.len()];
        let rewrites = edit.ops.len();
        for (node, op) in edit.ops {
            assert!(
                node < self.nodes.len(),
                "edit references node {node} out of range"
            );
            assert!(
                by_node[node].is_none(),
                "node {node} edited twice in one batch"
            );
            by_node[node] = Some(op);
        }
        let mut touched = WireSet::empty(self.num_qubits);
        let mut new_nodes: Vec<Instruction> = Vec::with_capacity(self.nodes.len());
        for (i, inst) in self.nodes.drain(..).enumerate() {
            match by_node[i].take() {
                None => new_nodes.push(inst),
                Some(op) => {
                    for &q in &inst.qubits {
                        touched.insert(q);
                    }
                    for ni in op.into_iter().flatten() {
                        for &q in &ni.qubits {
                            assert!(
                                q < self.num_qubits,
                                "replacement qubit {q} out of range for {}-qubit dag",
                                self.num_qubits
                            );
                            touched.insert(q);
                        }
                        new_nodes.push(ni);
                    }
                }
            }
        }
        self.nodes = new_nodes;
        let (preds, succs) = build_links(&self.nodes, self.num_qubits);
        self.preds = preds;
        self.succs = succs;
        self.generation += 1;
        for q in touched.iter() {
            self.wire_gen[q] = self.generation;
        }
        ChangeReport { rewrites, touched }
    }

    /// Replaces the whole node stream (and possibly the width) — the tool
    /// of structural passes like layout application and routing that
    /// reconstruct the circuit rather than rewrite nodes in place. Touches
    /// every wire.
    pub fn replace_all(&mut self, num_qubits: usize, nodes: Vec<Instruction>) -> ChangeReport {
        let rewrites = self.nodes.len().max(nodes.len()).max(1);
        self.num_qubits = num_qubits;
        self.nodes = nodes;
        let (preds, succs) = build_links(&self.nodes, self.num_qubits);
        self.preds = preds;
        self.succs = succs;
        self.generation += 1;
        self.wire_gen = vec![self.generation; num_qubits];
        ChangeReport {
            rewrites,
            touched: WireSet::full(num_qubits),
        }
    }

    /// The instructions, indexed by node id (instruction order).
    pub fn nodes(&self) -> &[Instruction] {
        &self.nodes
    }

    /// Wire predecessors of a node.
    pub fn preds(&self, node: usize) -> &[usize] {
        &self.preds[node]
    }

    /// Wire successors of a node.
    pub fn succs(&self, node: usize) -> &[usize] {
        &self.succs[node]
    }

    /// Creates a scheduler whose ready set starts at the DAG's sources.
    pub fn scheduler(&self) -> Scheduler<'_> {
        let remaining_preds: Vec<usize> = self.preds.iter().map(|p| p.len()).collect();
        let ready: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| remaining_preds[i] == 0)
            .collect();
        Scheduler {
            dag: self,
            remaining_preds,
            ready,
        }
    }

    /// Maximal runs of consecutive single-qubit *unitary* gates on the same
    /// wire. Directives, resets and measures break runs, as does any
    /// multi-qubit gate.
    pub fn single_qubit_runs(&self) -> Vec<Vec<usize>> {
        let mut runs: Vec<Vec<usize>> = Vec::new();
        let mut open: Vec<Option<usize>> = vec![None; self.num_qubits]; // run index per wire
        for (i, inst) in self.nodes.iter().enumerate() {
            let one_q_unitary = inst.qubits.len() == 1 && inst.gate.is_unitary_gate();
            if one_q_unitary {
                let q = inst.qubits[0];
                match open[q] {
                    Some(r) => runs[r].push(i),
                    None => {
                        runs.push(vec![i]);
                        open[q] = Some(runs.len() - 1);
                    }
                }
            } else {
                for &q in &inst.qubits {
                    open[q] = None;
                }
            }
        }
        runs
    }

    /// Collects maximal blocks of unitary gates confined to at most
    /// `max_arity` qubits, anchored by at least one multi-qubit gate —
    /// single-qubit gates preceding a block on its wires are absorbed into
    /// it. Blocks are returned sorted by first node index.
    ///
    /// The membership logic is [`BlockTracker`] — the same machine the
    /// fusion planner uses to grow dense kernel blocks in-stream — so
    /// `ConsolidateBlocks`, QPO's block rewrite and the planner all agree
    /// on what constitutes a foldable neighborhood.
    pub fn collect_blocks(&self, max_arity: usize) -> Vec<Block> {
        let mut tracker = BlockTracker::sealing(self.num_qubits, max_arity);
        // Pending 1q gates per wire, waiting for a multi-qubit anchor.
        let mut pending: Vec<Vec<usize>> = vec![Vec::new(); self.num_qubits];
        // Node lists per tracker block id.
        let mut nodes_of: Vec<Vec<usize>> = Vec::new();
        for (i, inst) in self.nodes.iter().enumerate() {
            let unitary = inst.gate.is_unitary_gate() && !inst.gate.is_directive();
            if !unitary || inst.qubits.len() > max_arity {
                // Directive, non-unitary, or too wide: breaks blocks and
                // pending runs on all touched wires.
                for &q in &inst.qubits {
                    pending[q].clear();
                }
                tracker.touch(&inst.qubits, i);
                continue;
            }
            if inst.qubits.len() == 1 {
                let q = inst.qubits[0];
                match tracker.membership(&inst.qubits) {
                    Membership::Join { block, new_qubits } if new_qubits.is_empty() => {
                        nodes_of[block].push(i)
                    }
                    _ => pending[q].push(i),
                }
                continue;
            }
            match tracker.membership(&inst.qubits) {
                Membership::Join { block, new_qubits } => {
                    for &q in &new_qubits {
                        nodes_of[block].append(&mut pending[q]);
                    }
                    tracker.extend(block, &new_qubits);
                    nodes_of[block].push(i);
                }
                Membership::Outside => {
                    let block = tracker.open(&inst.qubits, i);
                    let mut nodes = Vec::new();
                    for &q in &inst.qubits {
                        nodes.append(&mut pending[q]);
                    }
                    nodes.push(i);
                    debug_assert_eq!(block, nodes_of.len());
                    nodes_of.push(nodes);
                }
            }
        }
        let mut blocks: Vec<Block> = nodes_of
            .into_iter()
            .enumerate()
            .map(|(id, mut nodes)| {
                nodes.sort_unstable();
                Block {
                    qubits: tracker.block_qubits(id).to_vec(),
                    nodes,
                }
            })
            .collect();
        blocks.sort_by_key(|b| b.nodes[0]);
        blocks
    }

    /// Collects maximal two-qubit blocks: groups of gates confined to one
    /// pair of qubits, anchored by at least one two-qubit gate (the
    /// `Collect2qBlocks` analogue; [`Dag::collect_blocks`] with arity 2).
    pub fn collect_two_qubit_blocks(&self) -> Vec<TwoQubitBlock> {
        self.collect_blocks(2)
            .into_iter()
            .map(|b| TwoQubitBlock {
                qubits: (b.qubits[0].min(b.qubits[1]), b.qubits[0].max(b.qubits[1])),
                nodes: b.nodes,
            })
            .collect()
    }
}

/// Incremental topological scheduler over a [`Dag`], used by routing: nodes
/// become ready once all their wire predecessors have been executed.
#[derive(Clone, Debug)]
pub struct Scheduler<'a> {
    dag: &'a Dag,
    remaining_preds: Vec<usize>,
    ready: Vec<usize>,
}

impl<'a> Scheduler<'a> {
    /// Nodes whose predecessors have all executed.
    pub fn ready(&self) -> &[usize] {
        &self.ready
    }

    /// Returns `true` when every node has been executed.
    pub fn is_done(&self) -> bool {
        self.ready.is_empty()
    }

    /// Marks `node` executed, removing it from the ready set and promoting
    /// any successors that become ready.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not currently ready.
    pub fn execute(&mut self, node: usize) {
        let pos = self
            .ready
            .iter()
            .position(|&n| n == node)
            .expect("node must be ready to execute");
        self.ready.swap_remove(pos);
        for &s in self.dag.succs(node) {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                self.ready.push(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn wire_structure() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).h(2);
        let dag = Dag::from_circuit(&c);
        assert_eq!(dag.preds(0), &[] as &[usize]);
        assert_eq!(dag.preds(1), &[0]);
        assert_eq!(dag.preds(2), &[1]);
        assert_eq!(dag.preds(3), &[2]);
        assert_eq!(dag.succs(0), &[1]);
    }

    #[test]
    fn multi_wire_pred_deduplicated() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        let dag = Dag::from_circuit(&c);
        // Second cx depends on first through both wires but only once.
        assert_eq!(dag.preds(1), &[0]);
    }

    #[test]
    fn scheduler_executes_in_dependency_order() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cx(0, 1).cx(1, 2);
        let dag = Dag::from_circuit(&c);
        let mut s = dag.scheduler();
        let mut order = Vec::new();
        while !s.is_done() {
            let n = s.ready()[0];
            order.push(n);
            s.execute(n);
        }
        assert_eq!(order.len(), 4);
        // cx(0,1) must come after both h gates; cx(1,2) after cx(0,1).
        let pos = |n: usize| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(2) > pos(0) && pos(2) > pos(1));
        assert!(pos(3) > pos(2));
    }

    #[test]
    fn single_qubit_runs_split_by_two_qubit_gates() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).s(0).sdg(1).h(1);
        let dag = Dag::from_circuit(&c);
        let runs = dag.single_qubit_runs();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0], vec![0, 1]); // h,t on qubit 0
        assert_eq!(runs[1], vec![3]); // s on qubit 0 after cx
        assert_eq!(runs[2], vec![4, 5]); // sdg,h on qubit 1
    }

    #[test]
    fn runs_broken_by_directives_and_measure() {
        let mut c = Circuit::new(1);
        c.h(0).barrier().h(0).measure(0);
        let dag = Dag::from_circuit(&c);
        let runs = dag.single_qubit_runs();
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn two_qubit_block_collection_basic() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(0, 1).cx(1, 2);
        let dag = Dag::from_circuit(&c);
        let blocks = dag.collect_two_qubit_blocks();
        assert_eq!(blocks.len(), 2);
        // First block: h(0) absorbed + cx, t, cx on (0,1).
        assert_eq!(blocks[0].qubits, (0, 1));
        assert_eq!(blocks[0].nodes, vec![0, 1, 2, 3]);
        // Second block: cx(1,2).
        assert_eq!(blocks[1].qubits, (1, 2));
        assert_eq!(blocks[1].nodes, vec![4]);
    }

    #[test]
    fn blocks_broken_by_three_qubit_gate() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).ccx(0, 1, 2).cx(0, 1);
        let dag = Dag::from_circuit(&c);
        let blocks = dag.collect_two_qubit_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].nodes, vec![0]);
        assert_eq!(blocks[1].nodes, vec![2]);
    }

    #[test]
    fn trailing_one_qubit_gates_stay_in_block() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(0).h(1);
        let dag = Dag::from_circuit(&c);
        let blocks = dag.collect_two_qubit_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].nodes, vec![0, 1, 2]);
    }

    #[test]
    fn lone_one_qubit_gates_form_no_block() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let dag = Dag::from_circuit(&c);
        assert!(dag.collect_two_qubit_blocks().is_empty());
    }

    #[test]
    fn apply_removes_and_replaces_nodes() {
        use crate::gate::Gate;
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2);
        let mut dag = Dag::from_circuit(&c);
        let mut edit = DagEdit::new();
        edit.remove(2); // drop the t
        edit.replace(
            1,
            vec![
                Instruction::new(Gate::H, vec![1]),
                Instruction::new(Gate::Cz, vec![0, 1]),
                Instruction::new(Gate::H, vec![1]),
            ],
        );
        let report = dag.apply(edit);
        assert_eq!(report.rewrites, 2);
        assert!(report.touched.contains(0) && report.touched.contains(1));
        assert!(!report.touched.contains(2));
        let names: Vec<&str> = dag.nodes().iter().map(|i| i.gate.name()).collect();
        assert_eq!(names, vec!["h", "h", "cz", "h", "cx"]);
        // Links rebuilt: the final cx depends on the last h (wire 1).
        assert_eq!(dag.preds(4), &[3]);
    }

    #[test]
    fn wire_generations_track_touched_wires_only() {
        let mut c = Circuit::new(4);
        c.h(0).cx(2, 3);
        let mut dag = Dag::from_circuit(&c);
        assert_eq!(dag.generation(), 1);
        let mut edit = DagEdit::new();
        edit.remove(1);
        dag.apply(edit);
        assert_eq!(dag.generation(), 2);
        assert_eq!(dag.wire_gen(0), 1);
        assert_eq!(dag.wire_gen(1), 1);
        assert_eq!(dag.wire_gen(2), 2);
        assert_eq!(dag.wire_gen(3), 2);
        // An empty edit is a no-op at generation level.
        let report = dag.apply(DagEdit::new());
        assert!(!report.changed());
        assert_eq!(dag.generation(), 2);
    }

    #[test]
    fn replace_all_rewrites_stream_and_width() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut dag = Dag::from_circuit(&c);
        let report = dag.replace_all(
            3,
            vec![
                Instruction::new(crate::gate::Gate::X, vec![2]),
                Instruction::new(crate::gate::Gate::Cx, vec![2, 0]),
            ],
        );
        assert!(report.changed());
        assert_eq!(dag.num_qubits(), 3);
        assert_eq!(dag.nodes().len(), 2);
        assert_eq!(dag.wire_gen(1), dag.generation());
    }

    #[test]
    fn conversion_counters_count_both_directions() {
        reset_conversion_counts();
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let dag = Dag::from_circuit(&c);
        let back = dag.to_circuit();
        assert_eq!(back, c);
        assert_eq!(conversion_counts(), (1, 1));
        reset_conversion_counts();
        assert_eq!(conversion_counts(), (0, 0));
    }

    #[test]
    fn gate_counts_match_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).ccx(0, 1, 2).measure_all();
        let dag = Dag::from_circuit(&c);
        assert_eq!(dag.gate_counts(), c.gate_counts());
    }
}
