//! The transpiler's shared mutable IR: a dependency-DAG view of a circuit.
//!
//! The instruction list of a [`Circuit`] is already a topological order;
//! [`Dag`] adds the wire structure on top of it: per-node predecessors and
//! successors along qubit wires, a ready-set scheduler (used by the routing
//! pass), maximal single-qubit runs (used by `Optimize1qGates`), and
//! two-qubit block collection (the `Collect2qBlocks` analogue).
//!
//! # O(edit) mutations
//!
//! Since the DAG-native pass-manager refactor the `Dag` is *mutable*:
//! passes batch their rewrites into a [`DagEdit`] (node removal,
//! replacement by an expansion, whole-stream reconstruction) and
//! [`Dag::apply`] splices them in. The representation is built for edits
//! whose cost scales with the **size of the edit, not the circuit**:
//!
//! * Nodes live in a slab indexed by a stable *node id*; removed ids are
//!   recycled through a free list instead of renumbering the stream.
//! * Program order is a doubly-linked list over the slab, so a splice
//!   relinks only its two order neighbours.
//! * Wire structure is stored per node as `(pred, succ)` id pairs aligned
//!   with the node's qubits; a splice patches only the chains of the wires
//!   it touches (falling back to a local order-list walk for a replacement
//!   wire the removed node did not carry).
//!
//! Every mutation bumps a monotone generation counter and stamps the
//! **wires** the edit touched ([`Dag::wire_gen`]), which is what lets
//! cached analyses (block membership, per-wire state automata) invalidate
//! only the wires a pass actually rewrote. The [`ChangeReport`] returned by
//! `apply` is the currency of the change-driven fixed-point loop: a pass
//! that reports no rewrites is skipped until another pass dirties a wire;
//! its `relink_nodes` field counts the nodes whose links the splice patched
//! (the observable for the O(edit) claim).
//!
//! The `Dag` additionally maintains a per-wire census of the
//! [gate classes](gate_class) of the nodes currently on each wire
//! (incremented/decremented per splice, O(edit)). The census backs the
//! pass manager's *interest filtering*: a pass can declare which gate
//! classes it rewrites, and the fixed-point driver consults
//! [`Dag::wire_class_mask`] to skip the pass when no dirty wire carries
//! relevant content.
//!
//! [`Dag::from_circuit`] and [`Dag::to_circuit`] are the *only* sanctioned
//! Circuit↔Dag boundary and each bumps a thread-local conversion counter
//! ([`conversion_counts`]) so tests can assert a pipeline converts exactly
//! once in each direction.

use crate::blocks::{Block, BlockTracker, Membership};
use crate::circuit::{gate_counts_over, Circuit, GateCounts, Instruction};
use crate::gate::Gate;
use std::cell::Cell;
use std::collections::HashSet;

thread_local! {
    static CIRCUIT_TO_DAG: Cell<usize> = const { Cell::new(0) };
    static DAG_TO_CIRCUIT: Cell<usize> = const { Cell::new(0) };
}

/// `(circuit→dag, dag→circuit)` conversion counts for the current thread
/// since the last [`reset_conversion_counts`].
pub fn conversion_counts() -> (usize, usize) {
    (CIRCUIT_TO_DAG.get(), DAG_TO_CIRCUIT.get())
}

/// Zeroes the thread-local conversion counters.
pub fn reset_conversion_counts() {
    CIRCUIT_TO_DAG.set(0);
    DAG_TO_CIRCUIT.set(0);
}

/// The absent-link sentinel of the intrusive lists.
const NONE: usize = usize::MAX;

/// Gate-class bits of the per-wire node census ([`Dag::wire_class_mask`]),
/// the vocabulary passes use to declare their rewrite interest.
///
/// A class may over-approximate ("this wire carries *some* CX") but never
/// under-approximate: interest filtering skips a pass only when no dirty
/// wire carries a class the pass declared, so a missing bit would change
/// pipeline output.
pub mod gate_class {
    /// Any single-qubit unitary gate.
    pub const ONE_Q: u16 = 1 << 0;
    /// Z-diagonal single-qubit gates (`z,s,sdg,t,tdg,rz,u1,id`) — the
    /// phase family `CommutativeCancellation` merges and `CxCancellation`
    /// looks through on control wires.
    pub const ONE_Q_DIAG: u16 = 1 << 1;
    /// X-axis rotations (`x`, `rx`) — the family that commutes through
    /// CNOT targets.
    pub const ONE_Q_X: u16 = 1 << 2;
    /// Self-inverse single-qubit gates (`x,y,z,h`) whose adjacent pairs
    /// `CxCancellation` removes.
    pub const SELF_INVERSE: u16 = 1 << 3;
    /// A `cx` gate.
    pub const CX: u16 = 1 << 4;
    /// Any two-qubit unitary gate (`cx` included).
    pub const TWO_Q: u16 = 1 << 5;
    /// Unitary gates on three or more qubits.
    pub const MULTI_Q: u16 = 1 << 6;
    /// The swap family (`swap`, `swapz`, `cswap`) — the gates that move
    /// analysis state between wires.
    pub const SWAP_FAMILY: u16 = 1 << 7;
    /// Unitary gates outside the device basis `{u1,u2,u3,id,cx}`.
    pub const NON_DEVICE: u16 = 1 << 8;
    /// Unitary gates outside the extended basis (device ∪ `{swap,swapz}`).
    pub const NON_EXTENDED: u16 = 1 << 9;
    /// Non-unitary instructions (measure, reset, barriers, annotations).
    pub const NON_UNITARY: u16 = 1 << 10;
    /// Number of class bits.
    pub const COUNT: usize = 11;
}

/// The [`gate_class`] bits of one instruction.
pub fn instruction_classes(inst: &Instruction) -> u16 {
    use gate_class::*;
    let g = &inst.gate;
    if !g.is_unitary_gate() {
        return NON_UNITARY;
    }
    let mut m = 0u16;
    match inst.qubits.len() {
        1 => {
            m |= ONE_Q;
            if matches!(
                g,
                Gate::Z
                    | Gate::S
                    | Gate::Sdg
                    | Gate::T
                    | Gate::Tdg
                    | Gate::Rz(_)
                    | Gate::U1(_)
                    | Gate::I
            ) {
                m |= ONE_Q_DIAG;
            }
            if matches!(g, Gate::X | Gate::Rx(_)) {
                m |= ONE_Q_X;
            }
            if matches!(g, Gate::X | Gate::Y | Gate::Z | Gate::H) {
                m |= SELF_INVERSE;
            }
        }
        2 => {
            m |= TWO_Q;
            if matches!(g, Gate::Cx) {
                m |= CX;
            }
        }
        _ => m |= MULTI_Q,
    }
    if matches!(g, Gate::Swap | Gate::SwapZ | Gate::Cswap) {
        m |= SWAP_FAMILY;
    }
    let device = matches!(
        g,
        Gate::I | Gate::U1(_) | Gate::U2(..) | Gate::U3(..) | Gate::Cx
    );
    if !device {
        m |= NON_DEVICE;
        if !matches!(g, Gate::Swap | Gate::SwapZ) {
            m |= NON_EXTENDED;
        }
    }
    m
}

/// A set of wires (qubit indices), the unit of analysis invalidation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireSet {
    bits: Vec<bool>,
}

impl WireSet {
    /// The empty set over `num_qubits` wires.
    pub fn empty(num_qubits: usize) -> Self {
        WireSet {
            bits: vec![false; num_qubits],
        }
    }

    /// The full set over `num_qubits` wires.
    pub fn full(num_qubits: usize) -> Self {
        WireSet {
            bits: vec![true; num_qubits],
        }
    }

    /// Number of wires the set ranges over.
    pub fn num_qubits(&self) -> usize {
        self.bits.len()
    }

    /// Adds a wire.
    pub fn insert(&mut self, q: usize) {
        if q >= self.bits.len() {
            self.bits.resize(q + 1, false);
        }
        self.bits[q] = true;
    }

    /// Whether the set contains `q`.
    pub fn contains(&self, q: usize) -> bool {
        self.bits.get(q).copied().unwrap_or(false)
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        !self.bits.iter().any(|&b| b)
    }

    /// Removes every wire.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|b| *b = false);
    }

    /// Adds every wire of `other`.
    pub fn union(&mut self, other: &WireSet) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), false);
        }
        for (q, &b) in other.bits.iter().enumerate() {
            if b {
                self.bits[q] = true;
            }
        }
    }

    /// The contained wires, ascending.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter_map(|(q, &b)| b.then_some(q))
    }
}

/// What a pass did to the DAG: how many nodes it rewrote and which wires
/// those rewrites touched. The fixed-point driver unions reports into the
/// other passes' dirty sets; a report with zero rewrites dirties nothing.
#[derive(Clone, Debug)]
pub struct ChangeReport {
    /// Number of edit operations applied (removals + replacements).
    pub rewrites: usize,
    /// Wires touched by the rewrites (old and new instructions' qubits).
    pub touched: WireSet,
    /// Nodes whose link fields the splice-local relink rewrote (removed
    /// nodes, inserted nodes, and the chain neighbours patched around
    /// them) — the per-edit work measure of the O(edit) relink.
    pub relink_nodes: usize,
}

impl ChangeReport {
    /// A report of no changes.
    pub fn none(num_qubits: usize) -> Self {
        ChangeReport {
            rewrites: 0,
            touched: WireSet::empty(num_qubits),
            relink_nodes: 0,
        }
    }

    /// Whether anything changed.
    pub fn changed(&self) -> bool {
        self.rewrites > 0
    }

    /// Accumulates `other` into this report.
    pub fn merge(&mut self, other: &ChangeReport) {
        self.rewrites += other.rewrites;
        self.touched.union(&other.touched);
        self.relink_nodes += other.relink_nodes;
    }
}

/// One batched mutation of a [`Dag`]: node removals and replacements
/// (splice-in of decompositions), applied splice-locally by [`Dag::apply`].
#[derive(Clone, Debug, Default)]
pub struct DagEdit {
    ops: Vec<(usize, Option<Vec<Instruction>>)>,
}

impl DagEdit {
    /// An empty edit.
    pub fn new() -> Self {
        DagEdit::default()
    }

    /// Removes node `node`.
    pub fn remove(&mut self, node: usize) {
        self.ops.push((node, None));
    }

    /// Replaces node `node` with `insts` (empty = removal) spliced in at
    /// its position.
    pub fn replace(&mut self, node: usize, insts: Vec<Instruction>) {
        self.ops.push((node, Some(insts)));
    }

    /// Whether the edit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Number of edit operations recorded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }
}

/// One slab entry: the instruction plus its intrusive links — program-order
/// neighbours and, per qubit of the instruction, the previous/next node on
/// that wire.
#[derive(Clone, Debug)]
struct Node {
    inst: Instruction,
    order_prev: usize,
    order_next: usize,
    /// `(pred, succ)` node ids per wire, aligned with `inst.qubits`.
    wires: Vec<(usize, usize)>,
}

/// Dependency DAG over the instructions of a circuit — the transpiler's
/// shared mutable IR (see the module docs).
///
/// Nodes are addressed by stable *node ids* (slab indices): an id stays
/// valid until the node is removed by an edit, and removed ids are recycled
/// for later insertions. Ids carry **no order meaning** — program order is
/// [`Dag::iter`]'s iteration order.
#[derive(Clone, Debug)]
pub struct Dag {
    num_qubits: usize,
    slots: Vec<Option<Node>>,
    free: Vec<usize>,
    len: usize,
    head: usize,
    tail: usize,
    /// Monotone mutation counter; bumped by every non-empty [`Dag::apply`].
    generation: u64,
    /// Per-wire stamp of the generation that last touched the wire.
    wire_gen: Vec<u64>,
    /// Per-wire census: how many nodes on the wire carry each
    /// [`gate_class`] bit. Maintained incrementally per splice.
    wire_classes: Vec<[u32; gate_class::COUNT]>,
}

/// A collected two-qubit block: a maximal run of gates that act only on one
/// pair of qubits (Qiskit's `Collect2qBlocks`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TwoQubitBlock {
    /// The two qubits spanned by the block (unordered; stored ascending).
    pub qubits: (usize, usize),
    /// Node ids in program order. At least one two-qubit gate.
    pub nodes: Vec<usize>,
}

impl Dag {
    /// Builds the DAG from a circuit, bumping the thread-local
    /// circuit→dag conversion counter.
    pub fn from_circuit(circuit: &Circuit) -> Self {
        CIRCUIT_TO_DAG.set(CIRCUIT_TO_DAG.get() + 1);
        let mut dag = Dag {
            num_qubits: circuit.num_qubits(),
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
            head: NONE,
            tail: NONE,
            generation: 1,
            wire_gen: vec![1; circuit.num_qubits()],
            wire_classes: vec![[0; gate_class::COUNT]; circuit.num_qubits()],
        };
        dag.rebuild(circuit.instructions().to_vec());
        dag
    }

    /// Dense slab construction from an instruction stream: id `i` is the
    /// `i`-th instruction. Resets the free list and the wire census; does
    /// not touch generations.
    fn rebuild(&mut self, insts: Vec<Instruction>) {
        let n = insts.len();
        self.free.clear();
        self.len = n;
        self.head = if n == 0 { NONE } else { 0 };
        self.tail = if n == 0 { NONE } else { n - 1 };
        self.wire_classes = vec![[0; gate_class::COUNT]; self.num_qubits];
        self.slots = insts
            .into_iter()
            .enumerate()
            .map(|(i, inst)| {
                let wires = vec![(NONE, NONE); inst.qubits.len()];
                Some(Node {
                    inst,
                    order_prev: if i == 0 { NONE } else { i - 1 },
                    order_next: if i + 1 == n { NONE } else { i + 1 },
                    wires,
                })
            })
            .collect();
        let mut last_on_wire = vec![NONE; self.num_qubits];
        for i in 0..n {
            let (before, rest) = self.slots.split_at_mut(i);
            let node = rest[0].as_mut().expect("dense build");
            for j in 0..node.inst.qubits.len() {
                let q = node.inst.qubits[j];
                let p = last_on_wire[q];
                node.wires[j].0 = p;
                if p != NONE {
                    let pn = before[p].as_mut().expect("dense build");
                    let slot = pn
                        .inst
                        .qubits
                        .iter()
                        .position(|&x| x == q)
                        .expect("pred carries the wire");
                    pn.wires[slot].1 = i;
                }
                last_on_wire[q] = i;
            }
            let classes = instruction_classes(&node.inst);
            for &q in &node.inst.qubits {
                bump_classes(&mut self.wire_classes[q], classes, 1);
            }
        }
    }

    /// Flattens the DAG back into a circuit (program order), bumping the
    /// thread-local dag→circuit conversion counter.
    pub fn to_circuit(&self) -> Circuit {
        DAG_TO_CIRCUIT.set(DAG_TO_CIRCUIT.get() + 1);
        let mut c = Circuit::new(self.num_qubits);
        c.set_instructions(self.iter().map(|(_, inst)| inst.clone()).collect());
        c
    }

    /// Number of qubits of the underlying circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the DAG holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slab size: one more than the largest node id ever live. The right
    /// length for id-indexed scratch tables (`vec![...; dag.capacity()]`).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The monotone mutation counter (1 at construction).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The generation that last touched wire `q` — the key cached analyses
    /// compare against to invalidate per wire.
    pub fn wire_gen(&self, q: usize) -> u64 {
        self.wire_gen[q]
    }

    /// The [`gate_class`] bits present on wire `q`: the union of the
    /// classes of every node currently touching the wire. Maintained
    /// incrementally (O(edit) per splice); exact, not an over-approximation.
    pub fn wire_class_mask(&self, q: usize) -> u16 {
        let mut m = 0u16;
        for (bit, &count) in self.wire_classes[q].iter().enumerate() {
            if count > 0 {
                m |= 1 << bit;
            }
        }
        m
    }

    /// The instruction of node `id`.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a live node.
    pub fn inst(&self, id: usize) -> &Instruction {
        &self.node(id).inst
    }

    /// Full structural self-check: program-order links, per-wire links,
    /// free-list/slab agreement, and the incremental wire census against a
    /// from-scratch recount. Returns a description of the first violation.
    ///
    /// This is the post-pass validator's structural half — a corrupted
    /// splice (or a pass that panicked halfway through a mutation) shows up
    /// here before it can poison downstream passes.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the violated invariant.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Slab / free-list agreement.
        let live = self.slots.iter().filter(|s| s.is_some()).count();
        if live != self.len {
            return Err(format!("len {} but {live} live slots", self.len));
        }
        let mut free_seen = vec![false; self.slots.len()];
        for &f in &self.free {
            if f >= self.slots.len() || self.slots[f].is_some() {
                return Err(format!("free list holds live or out-of-range id {f}"));
            }
            if free_seen[f] {
                return Err(format!("free list holds id {f} twice"));
            }
            free_seen[f] = true;
        }
        if self.free.len() + live != self.slots.len() {
            return Err("dead slot missing from the free list".into());
        }
        // Program-order chain: walk head→tail, checking back-links.
        let mut count = 0usize;
        let mut prev = NONE;
        let mut cur = self.head;
        let mut order = Vec::with_capacity(self.len);
        while cur != NONE {
            let node = match self.slots.get(cur).and_then(|s| s.as_ref()) {
                Some(n) => n,
                None => return Err(format!("order chain reaches dead id {cur}")),
            };
            if node.order_prev != prev {
                return Err(format!(
                    "node {cur}: order_prev {} ≠ walk predecessor {prev}",
                    node.order_prev
                ));
            }
            if node.inst.qubits.len() != node.wires.len() {
                return Err(format!("node {cur}: wires misaligned with qubits"));
            }
            for &q in &node.inst.qubits {
                if q >= self.num_qubits {
                    return Err(format!("node {cur}: qubit {q} out of range"));
                }
            }
            order.push(cur);
            count += 1;
            if count > self.len {
                return Err("order chain longer than len (cycle?)".into());
            }
            prev = cur;
            cur = node.order_next;
        }
        if count != self.len {
            return Err(format!("order chain visits {count} of {} nodes", self.len));
        }
        if self.tail != prev {
            return Err(format!("tail {} ≠ last walked node {prev}", self.tail));
        }
        // Per-wire links must thread the program-order restriction of each
        // wire, and the incremental census must match a recount.
        let mut last_on_wire = vec![NONE; self.num_qubits];
        let mut census = vec![[0u32; gate_class::COUNT]; self.num_qubits];
        for &id in &order {
            let node = self.slots[id].as_ref().expect("walked above");
            let classes = instruction_classes(&node.inst);
            for (j, &q) in node.inst.qubits.iter().enumerate() {
                let expect_pred = last_on_wire[q];
                if node.wires[j].0 != expect_pred {
                    return Err(format!(
                        "node {id} wire {q}: pred {} ≠ program-order pred {expect_pred}",
                        node.wires[j].0
                    ));
                }
                if expect_pred != NONE {
                    let pn = self.slots[expect_pred].as_ref().expect("walked above");
                    if pn.wires[wire_slot(pn, q)].1 != id {
                        return Err(format!(
                            "node {expect_pred} wire {q}: succ does not return to {id}"
                        ));
                    }
                }
                last_on_wire[q] = id;
                bump_classes(&mut census[q], classes, 1);
            }
        }
        for (q, &last) in last_on_wire.iter().enumerate() {
            if last != NONE {
                let node = self.slots[last].as_ref().expect("walked above");
                if node.wires[wire_slot(node, q)].1 != NONE {
                    return Err(format!("node {last} wire {q}: dangling succ at wire end"));
                }
            }
        }
        for (q, counted) in census.iter().enumerate().take(self.num_qubits) {
            if *counted != self.wire_classes[q] {
                return Err(format!(
                    "wire {q}: census {:?} ≠ recount {:?}",
                    self.wire_classes[q], counted
                ));
            }
        }
        Ok(())
    }

    /// Live nodes in program order, as `(node id, instruction)` pairs.
    pub fn iter(&self) -> DagIter<'_> {
        DagIter {
            dag: self,
            cur: self.head,
        }
    }

    /// The previous node on wire `q` before node `id`, if any.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not live or does not carry wire `q`.
    pub fn wire_pred(&self, id: usize, q: usize) -> Option<usize> {
        let node = self.node(id);
        let slot = wire_slot(node, q);
        let p = node.wires[slot].0;
        (p != NONE).then_some(p)
    }

    /// The next node on wire `q` after node `id`, if any.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not live or does not carry wire `q`.
    pub fn wire_succ(&self, id: usize, q: usize) -> Option<usize> {
        let node = self.node(id);
        let slot = wire_slot(node, q);
        let s = node.wires[slot].1;
        (s != NONE).then_some(s)
    }

    fn node(&self, id: usize) -> &Node {
        self.slots[id].as_ref().expect("live node id")
    }

    fn node_mut(&mut self, id: usize) -> &mut Node {
        self.slots[id].as_mut().expect("live node id")
    }

    fn set_wire_pred(&mut self, id: usize, q: usize, v: usize) {
        let node = self.node_mut(id);
        let slot = wire_slot(node, q);
        node.wires[slot].0 = v;
    }

    fn set_wire_succ(&mut self, id: usize, q: usize, v: usize) {
        let node = self.node_mut(id);
        let slot = wire_slot(node, q);
        node.wires[slot].1 = v;
    }

    /// The nearest node at or before `start` (in program order) carrying
    /// wire `q`; `NONE` when the wire is untouched up to there.
    fn scan_wire_back(&self, start: usize, q: usize) -> usize {
        let mut cur = start;
        while cur != NONE {
            let node = self.node(cur);
            if node.inst.qubits.contains(&q) {
                return cur;
            }
            cur = node.order_prev;
        }
        NONE
    }

    /// The nearest node at or after `start` carrying wire `q`.
    fn scan_wire_fwd(&self, start: usize, q: usize) -> usize {
        let mut cur = start;
        while cur != NONE {
            let node = self.node(cur);
            if node.inst.qubits.contains(&q) {
                return cur;
            }
            cur = node.order_next;
        }
        NONE
    }

    fn alloc(&mut self, inst: Instruction) -> usize {
        let wires = vec![(NONE, NONE); inst.qubits.len()];
        let node = Node {
            inst,
            order_prev: NONE,
            order_next: NONE,
            wires,
        };
        match self.free.pop() {
            Some(id) => {
                self.slots[id] = Some(node);
                id
            }
            None => {
                self.slots.push(Some(node));
                self.slots.len() - 1
            }
        }
    }

    /// Gate statistics over the current nodes (same accounting as
    /// [`Circuit::gate_counts`]).
    pub fn gate_counts(&self) -> GateCounts {
        gate_counts_over(self.slots.iter().flatten().map(|n| &n.inst))
    }

    /// Applies a batched edit: removals and replacements splice in at
    /// their node's position, patching only the order links and wire
    /// chains around each splice (O(edit) amortized). The wires of every
    /// removed, replaced or inserted instruction are stamped with a fresh
    /// generation; freed node ids are recycled for later insertions.
    ///
    /// # Panics
    ///
    /// Panics if an edit references a node twice or a dead/out-of-range id,
    /// or if a replacement instruction uses an out-of-range qubit.
    pub fn apply(&mut self, edit: DagEdit) -> ChangeReport {
        if edit.is_empty() {
            return ChangeReport::none(self.num_qubits);
        }
        let rewrites = edit.ops.len();
        let mut touched = WireSet::empty(self.num_qubits);
        let mut relink_nodes = 0usize;
        let mut edited: HashSet<usize> = HashSet::with_capacity(rewrites);
        for (node, op) in edit.ops {
            assert!(
                node < self.slots.len() && self.slots[node].is_some() || edited.contains(&node),
                "edit references node {node} out of range"
            );
            assert!(
                edited.insert(node) && self.slots[node].is_some(),
                "node {node} edited twice in one batch"
            );
            relink_nodes += self.splice(node, op.unwrap_or_default(), &mut touched);
        }
        self.generation += 1;
        for q in touched.iter() {
            self.wire_gen[q] = self.generation;
        }
        ChangeReport {
            rewrites,
            touched,
            relink_nodes,
        }
    }

    /// Replaces node `node_id` with `insts` (possibly empty), patching the
    /// order list and the wire chains locally. Returns the number of nodes
    /// whose links were rewritten.
    fn splice(&mut self, node_id: usize, insts: Vec<Instruction>, touched: &mut WireSet) -> usize {
        let removed = self.slots[node_id].take().expect("live node id");
        self.len -= 1;
        self.free.push(node_id);
        let mut relinked = 1usize;
        let removed_classes = instruction_classes(&removed.inst);
        for &q in &removed.inst.qubits {
            touched.insert(q);
            bump_classes(&mut self.wire_classes[q], removed_classes, -1);
        }
        let (left, right) = (removed.order_prev, removed.order_next);
        // Unlink from the order list.
        if left != NONE {
            self.node_mut(left).order_next = right;
        } else {
            self.head = right;
        }
        if right != NONE {
            self.node_mut(right).order_prev = left;
        } else {
            self.tail = left;
        }
        // `(wire, pred, succ)` triples of the removed node.
        let removed_wires: Vec<(usize, usize, usize)> = removed
            .inst
            .qubits
            .iter()
            .zip(&removed.wires)
            .map(|(&q, &(p, s))| (q, p, s))
            .collect();

        // Allocate the replacements and thread them into the order list.
        let mut new_ids = Vec::with_capacity(insts.len());
        let mut cursor = left;
        for inst in insts {
            for &q in &inst.qubits {
                assert!(
                    q < self.num_qubits,
                    "replacement qubit {q} out of range for {}-qubit dag",
                    self.num_qubits
                );
                touched.insert(q);
            }
            let classes = instruction_classes(&inst);
            for &q in &inst.qubits {
                bump_classes(&mut self.wire_classes[q], classes, 1);
            }
            let id = self.alloc(inst);
            self.len += 1;
            {
                let node = self.node_mut(id);
                node.order_prev = cursor;
                node.order_next = right;
            }
            if cursor != NONE {
                self.node_mut(cursor).order_next = id;
            } else {
                self.head = id;
            }
            if right != NONE {
                self.node_mut(right).order_prev = id;
            } else {
                self.tail = id;
            }
            cursor = id;
            new_ids.push(id);
        }
        relinked += new_ids.len();

        // Wire-link the inserted run: chain same-wire neighbours among the
        // new nodes, tracking each wire's first/last inserted node.
        let mut runs: Vec<(usize, usize, usize)> = Vec::new();
        for &id in &new_ids {
            for j in 0..self.node(id).inst.qubits.len() {
                let q = self.node(id).inst.qubits[j];
                if let Some(run) = runs.iter_mut().find(|r| r.0 == q) {
                    let last = run.2;
                    run.2 = id;
                    self.set_wire_succ(last, q, id);
                    self.set_wire_pred(id, q, last);
                } else {
                    runs.push((q, id, id));
                }
            }
        }
        // Connect each inserted run to the surrounding chain: through the
        // removed node's captured neighbours when it carried the wire,
        // else by a local order-list walk from the splice point.
        for &(q, first, last) in &runs {
            let (wp, wn) = match removed_wires.iter().find(|r| r.0 == q) {
                Some(&(_, p, s)) => (p, s),
                None => (self.scan_wire_back(left, q), self.scan_wire_fwd(right, q)),
            };
            if wp != NONE {
                self.set_wire_succ(wp, q, first);
                relinked += 1;
            }
            self.set_wire_pred(first, q, wp);
            if wn != NONE {
                self.set_wire_pred(wn, q, last);
                relinked += 1;
            }
            self.set_wire_succ(last, q, wn);
        }
        // Removed wires no replacement re-uses: bridge pred to succ.
        for &(q, wp, wn) in &removed_wires {
            if runs.iter().any(|r| r.0 == q) {
                continue;
            }
            if wp != NONE {
                self.set_wire_succ(wp, q, wn);
                relinked += 1;
            }
            if wn != NONE {
                self.set_wire_pred(wn, q, wp);
                relinked += 1;
            }
        }
        relinked
    }

    /// Replaces the whole node stream (and possibly the width) — the tool
    /// of structural passes like layout application and routing that
    /// reconstruct the circuit rather than rewrite nodes in place. Touches
    /// every wire.
    pub fn replace_all(&mut self, num_qubits: usize, nodes: Vec<Instruction>) -> ChangeReport {
        let rewrites = self.len.max(nodes.len()).max(1);
        let relink_nodes = nodes.len();
        self.num_qubits = num_qubits;
        self.rebuild(nodes);
        self.generation += 1;
        self.wire_gen = vec![self.generation; num_qubits];
        ChangeReport {
            rewrites,
            touched: WireSet::full(num_qubits),
            relink_nodes,
        }
    }

    /// Creates a scheduler whose ready set starts at the DAG's sources.
    pub fn scheduler(&self) -> Scheduler<'_> {
        let cap = self.capacity();
        let mut pos = vec![NONE; cap];
        let mut remaining_preds = vec![0usize; cap];
        let mut ready = Vec::new();
        for (p, (id, _)) in self.iter().enumerate() {
            pos[id] = p;
            let node = self.node(id);
            let mut distinct = 0usize;
            for (j, &(wp, _)) in node.wires.iter().enumerate() {
                if wp != NONE && !node.wires[..j].iter().any(|&(x, _)| x == wp) {
                    distinct += 1;
                }
            }
            remaining_preds[id] = distinct;
            if distinct == 0 {
                ready.push(id);
            }
        }
        Scheduler {
            dag: self,
            pos,
            remaining_preds,
            ready,
        }
    }

    /// Maximal runs of consecutive single-qubit *unitary* gates on the same
    /// wire, as node ids in program order. Directives, resets and measures
    /// break runs, as does any multi-qubit gate.
    pub fn single_qubit_runs(&self) -> Vec<Vec<usize>> {
        let mut runs: Vec<Vec<usize>> = Vec::new();
        let mut open: Vec<Option<usize>> = vec![None; self.num_qubits]; // run index per wire
        for (id, inst) in self.iter() {
            let one_q_unitary = inst.qubits.len() == 1 && inst.gate.is_unitary_gate();
            if one_q_unitary {
                let q = inst.qubits[0];
                match open[q] {
                    Some(r) => runs[r].push(id),
                    None => {
                        runs.push(vec![id]);
                        open[q] = Some(runs.len() - 1);
                    }
                }
            } else {
                for &q in &inst.qubits {
                    open[q] = None;
                }
            }
        }
        runs
    }

    /// Collects maximal blocks of unitary gates confined to at most
    /// `max_arity` qubits, anchored by at least one multi-qubit gate —
    /// single-qubit gates preceding a block on its wires are absorbed into
    /// it. Blocks are returned sorted by program position, each block's
    /// node ids in program order.
    ///
    /// The membership logic is [`BlockTracker`] — the same machine the
    /// fusion planner uses to grow dense kernel blocks in-stream — so
    /// `ConsolidateBlocks`, QPO's block rewrite and the planner all agree
    /// on what constitutes a foldable neighborhood.
    pub fn collect_blocks(&self, max_arity: usize) -> Vec<Block> {
        let mut tracker = BlockTracker::sealing(self.num_qubits, max_arity);
        // Pending 1q gates per wire, waiting for a multi-qubit anchor.
        let mut pending: Vec<Vec<usize>> = vec![Vec::new(); self.num_qubits];
        // Node lists per tracker block id.
        let mut nodes_of: Vec<Vec<usize>> = Vec::new();
        // Program position per node id (ids carry no order meaning).
        let mut pos_of = vec![0usize; self.capacity()];
        for (pos, (id, inst)) in self.iter().enumerate() {
            pos_of[id] = pos;
            let unitary = inst.gate.is_unitary_gate() && !inst.gate.is_directive();
            if !unitary || inst.qubits.len() > max_arity {
                // Directive, non-unitary, or too wide: breaks blocks and
                // pending runs on all touched wires.
                for &q in &inst.qubits {
                    pending[q].clear();
                }
                tracker.touch(&inst.qubits, pos);
                continue;
            }
            if inst.qubits.len() == 1 {
                let q = inst.qubits[0];
                match tracker.membership(&inst.qubits) {
                    Membership::Join { block, new_qubits } if new_qubits.is_empty() => {
                        nodes_of[block].push(id)
                    }
                    _ => pending[q].push(id),
                }
                continue;
            }
            match tracker.membership(&inst.qubits) {
                Membership::Join { block, new_qubits } => {
                    for &q in &new_qubits {
                        nodes_of[block].append(&mut pending[q]);
                    }
                    tracker.extend(block, &new_qubits);
                    nodes_of[block].push(id);
                }
                Membership::Outside => {
                    let block = tracker.open(&inst.qubits, pos);
                    let mut nodes = Vec::new();
                    for &q in &inst.qubits {
                        nodes.append(&mut pending[q]);
                    }
                    nodes.push(id);
                    debug_assert_eq!(block, nodes_of.len());
                    nodes_of.push(nodes);
                }
            }
        }
        let mut blocks: Vec<Block> = nodes_of
            .into_iter()
            .enumerate()
            .map(|(block_id, mut nodes)| {
                nodes.sort_unstable_by_key(|&id| pos_of[id]);
                Block {
                    qubits: tracker.block_qubits(block_id).to_vec(),
                    nodes,
                }
            })
            .collect();
        blocks.sort_by_key(|b| pos_of[b.nodes[0]]);
        blocks
    }

    /// Collects maximal two-qubit blocks: groups of gates confined to one
    /// pair of qubits, anchored by at least one two-qubit gate (the
    /// `Collect2qBlocks` analogue; [`Dag::collect_blocks`] with arity 2).
    pub fn collect_two_qubit_blocks(&self) -> Vec<TwoQubitBlock> {
        self.collect_blocks(2)
            .into_iter()
            .map(|b| TwoQubitBlock {
                qubits: (b.qubits[0].min(b.qubits[1]), b.qubits[0].max(b.qubits[1])),
                nodes: b.nodes,
            })
            .collect()
    }
}

fn bump_classes(counts: &mut [u32; gate_class::COUNT], classes: u16, delta: i32) {
    for (bit, count) in counts.iter_mut().enumerate() {
        if classes & (1 << bit) != 0 {
            *count = count
                .checked_add_signed(delta)
                .expect("class census underflow");
        }
    }
}

fn wire_slot(node: &Node, q: usize) -> usize {
    node.inst
        .qubits
        .iter()
        .position(|&x| x == q)
        .expect("node carries the wire")
}

/// Program-order iterator over a [`Dag`]'s live nodes.
pub struct DagIter<'a> {
    dag: &'a Dag,
    cur: usize,
}

impl<'a> Iterator for DagIter<'a> {
    type Item = (usize, &'a Instruction);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NONE {
            return None;
        }
        let id = self.cur;
        let node = self.dag.node(id);
        self.cur = node.order_next;
        Some((id, &node.inst))
    }
}

/// Incremental topological scheduler over a [`Dag`], used by routing: nodes
/// become ready once all their wire predecessors have been executed. Ready
/// promotion follows program order (position, not node id), so scheduling
/// is identical for a freshly built and an edit-spliced DAG of the same
/// stream.
#[derive(Clone, Debug)]
pub struct Scheduler<'a> {
    dag: &'a Dag,
    /// Program position per node id at scheduler creation.
    pos: Vec<usize>,
    remaining_preds: Vec<usize>,
    ready: Vec<usize>,
}

impl<'a> Scheduler<'a> {
    /// Node ids whose predecessors have all executed.
    pub fn ready(&self) -> &[usize] {
        &self.ready
    }

    /// Returns `true` when every node has been executed.
    pub fn is_done(&self) -> bool {
        self.ready.is_empty()
    }

    /// Marks `node` executed, removing it from the ready set and promoting
    /// any successors that become ready (in program order).
    ///
    /// # Panics
    ///
    /// Panics if `node` is not currently ready.
    pub fn execute(&mut self, node: usize) {
        let pos = self
            .ready
            .iter()
            .position(|&n| n == node)
            .expect("node must be ready to execute");
        self.ready.swap_remove(pos);
        let n = self.dag.node(node);
        let mut succs: Vec<usize> = Vec::with_capacity(n.wires.len());
        for &(_, ws) in &n.wires {
            if ws != NONE && !succs.contains(&ws) {
                succs.push(ws);
            }
        }
        succs.sort_unstable_by_key(|&s| self.pos[s]);
        for s in succs {
            self.remaining_preds[s] -= 1;
            if self.remaining_preds[s] == 0 {
                self.ready.push(s);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    /// Node ids in program order.
    fn order(dag: &Dag) -> Vec<usize> {
        dag.iter().map(|(id, _)| id).collect()
    }

    #[test]
    fn wire_structure() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2).h(2);
        let dag = Dag::from_circuit(&c);
        assert_eq!(dag.wire_pred(0, 0), None);
        assert_eq!(dag.wire_pred(1, 0), Some(0));
        assert_eq!(dag.wire_pred(2, 1), Some(1));
        assert_eq!(dag.wire_pred(3, 2), Some(2));
        assert_eq!(dag.wire_succ(0, 0), Some(1));
    }

    #[test]
    fn multi_wire_links_per_wire() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(0, 1);
        let dag = Dag::from_circuit(&c);
        // Second cx depends on first through both wires.
        assert_eq!(dag.wire_pred(1, 0), Some(0));
        assert_eq!(dag.wire_pred(1, 1), Some(0));
    }

    #[test]
    fn scheduler_executes_in_dependency_order() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).cx(0, 1).cx(1, 2);
        let dag = Dag::from_circuit(&c);
        let mut s = dag.scheduler();
        let mut order = Vec::new();
        while !s.is_done() {
            let n = s.ready()[0];
            order.push(n);
            s.execute(n);
        }
        assert_eq!(order.len(), 4);
        // cx(0,1) must come after both h gates; cx(1,2) after cx(0,1).
        let pos = |n: usize| order.iter().position(|&x| x == n).unwrap();
        assert!(pos(2) > pos(0) && pos(2) > pos(1));
        assert!(pos(3) > pos(2));
    }

    #[test]
    fn single_qubit_runs_split_by_two_qubit_gates() {
        let mut c = Circuit::new(2);
        c.h(0).t(0).cx(0, 1).s(0).sdg(1).h(1);
        let dag = Dag::from_circuit(&c);
        let runs = dag.single_qubit_runs();
        assert_eq!(runs.len(), 3);
        assert_eq!(runs[0], vec![0, 1]); // h,t on qubit 0
        assert_eq!(runs[1], vec![3]); // s on qubit 0 after cx
        assert_eq!(runs[2], vec![4, 5]); // sdg,h on qubit 1
    }

    #[test]
    fn runs_broken_by_directives_and_measure() {
        let mut c = Circuit::new(1);
        c.h(0).barrier().h(0).measure(0);
        let dag = Dag::from_circuit(&c);
        let runs = dag.single_qubit_runs();
        assert_eq!(runs.len(), 2);
    }

    #[test]
    fn two_qubit_block_collection_basic() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(0, 1).cx(1, 2);
        let dag = Dag::from_circuit(&c);
        let blocks = dag.collect_two_qubit_blocks();
        assert_eq!(blocks.len(), 2);
        // First block: h(0) absorbed + cx, t, cx on (0,1).
        assert_eq!(blocks[0].qubits, (0, 1));
        assert_eq!(blocks[0].nodes, vec![0, 1, 2, 3]);
        // Second block: cx(1,2).
        assert_eq!(blocks[1].qubits, (1, 2));
        assert_eq!(blocks[1].nodes, vec![4]);
    }

    #[test]
    fn blocks_broken_by_three_qubit_gate() {
        let mut c = Circuit::new(3);
        c.cx(0, 1).ccx(0, 1, 2).cx(0, 1);
        let dag = Dag::from_circuit(&c);
        let blocks = dag.collect_two_qubit_blocks();
        assert_eq!(blocks.len(), 2);
        assert_eq!(blocks[0].nodes, vec![0]);
        assert_eq!(blocks[1].nodes, vec![2]);
    }

    #[test]
    fn trailing_one_qubit_gates_stay_in_block() {
        let mut c = Circuit::new(2);
        c.cx(0, 1).h(0).h(1);
        let dag = Dag::from_circuit(&c);
        let blocks = dag.collect_two_qubit_blocks();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].nodes, vec![0, 1, 2]);
    }

    #[test]
    fn lone_one_qubit_gates_form_no_block() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let dag = Dag::from_circuit(&c);
        assert!(dag.collect_two_qubit_blocks().is_empty());
    }

    #[test]
    fn apply_removes_and_replaces_nodes() {
        use crate::gate::Gate;
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(1).cx(1, 2);
        let mut dag = Dag::from_circuit(&c);
        let mut edit = DagEdit::new();
        edit.remove(2); // drop the t
        edit.replace(
            1,
            vec![
                Instruction::new(Gate::H, vec![1]),
                Instruction::new(Gate::Cz, vec![0, 1]),
                Instruction::new(Gate::H, vec![1]),
            ],
        );
        let report = dag.apply(edit);
        assert_eq!(report.rewrites, 2);
        assert!(report.relink_nodes >= 5); // 2 removed + 3 inserted
        assert!(report.touched.contains(0) && report.touched.contains(1));
        assert!(!report.touched.contains(2));
        let names: Vec<&str> = dag.iter().map(|(_, i)| i.gate.name()).collect();
        assert_eq!(names, vec!["h", "h", "cz", "h", "cx"]);
        // Links patched: the final cx depends on the last h through wire 1.
        let ids = order(&dag);
        assert_eq!(dag.wire_pred(ids[4], 1), Some(ids[3]));
        assert_eq!(dag.wire_succ(ids[3], 1), Some(ids[4]));
    }

    #[test]
    fn incremental_relink_matches_fresh_build() {
        use crate::gate::Gate;
        let mut c = Circuit::new(4);
        c.h(0).cx(0, 1).t(1).cx(1, 2).cx(2, 3).h(3);
        let mut dag = Dag::from_circuit(&c);
        let mut edit = DagEdit::new();
        edit.replace(
            3,
            vec![
                Instruction::new(Gate::H, vec![2]),
                Instruction::new(Gate::Cz, vec![1, 2]),
            ],
        );
        edit.remove(0);
        dag.apply(edit);
        let fresh = Dag::from_circuit(&dag.to_circuit());
        assert_links_match_fresh(&dag, &fresh);
    }

    /// Asserts `dag`'s order and wire links equal a freshly built DAG of
    /// the same stream, position by position.
    fn assert_links_match_fresh(dag: &Dag, fresh: &Dag) {
        let ids = order(dag);
        assert_eq!(ids.len(), fresh.len());
        let pos_of = |id: usize| ids.iter().position(|&x| x == id);
        for (p, &id) in ids.iter().enumerate() {
            assert_eq!(dag.inst(id), fresh.inst(p), "instruction at position {p}");
            for &q in &dag.inst(id).qubits {
                assert_eq!(
                    dag.wire_pred(id, q).and_then(pos_of),
                    fresh.wire_pred(p, q),
                    "wire {q} pred of position {p}"
                );
                assert_eq!(
                    dag.wire_succ(id, q).and_then(pos_of),
                    fresh.wire_succ(p, q),
                    "wire {q} succ of position {p}"
                );
            }
        }
    }

    #[test]
    fn freed_ids_are_recycled() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let mut dag = Dag::from_circuit(&c);
        assert_eq!(dag.capacity(), 3);
        let mut edit = DagEdit::new();
        edit.remove(0);
        dag.apply(edit);
        let mut edit = DagEdit::new();
        edit.replace(1, vec![Instruction::new(crate::gate::Gate::X, vec![1])]);
        dag.apply(edit);
        // The freed slots were reused: no slab growth.
        assert_eq!(dag.capacity(), 3);
        assert_eq!(dag.len(), 2);
    }

    #[test]
    fn wire_generations_track_touched_wires_only() {
        let mut c = Circuit::new(4);
        c.h(0).cx(2, 3);
        let mut dag = Dag::from_circuit(&c);
        assert_eq!(dag.generation(), 1);
        let mut edit = DagEdit::new();
        edit.remove(1);
        dag.apply(edit);
        assert_eq!(dag.generation(), 2);
        assert_eq!(dag.wire_gen(0), 1);
        assert_eq!(dag.wire_gen(1), 1);
        assert_eq!(dag.wire_gen(2), 2);
        assert_eq!(dag.wire_gen(3), 2);
        // An empty edit is a no-op at generation level.
        let report = dag.apply(DagEdit::new());
        assert!(!report.changed());
        assert_eq!(dag.generation(), 2);
    }

    #[test]
    fn wire_class_census_tracks_edits() {
        use gate_class::*;
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).t(1);
        let mut dag = Dag::from_circuit(&c);
        assert_ne!(dag.wire_class_mask(0) & SELF_INVERSE, 0);
        assert_ne!(dag.wire_class_mask(0) & CX, 0);
        assert_ne!(dag.wire_class_mask(1) & ONE_Q_DIAG, 0);
        // Remove the t: wire 1 keeps the cx, loses the diagonal class.
        let mut edit = DagEdit::new();
        edit.remove(2);
        dag.apply(edit);
        assert_eq!(dag.wire_class_mask(1) & ONE_Q_DIAG, 0);
        assert_ne!(dag.wire_class_mask(1) & CX, 0);
        // Replace the h with a u2: the self-inverse class leaves wire 0.
        let mut edit = DagEdit::new();
        edit.replace(
            0,
            vec![Instruction::new(
                Gate::U2(0.0, std::f64::consts::PI),
                vec![0],
            )],
        );
        dag.apply(edit);
        assert_eq!(dag.wire_class_mask(0) & SELF_INVERSE, 0);
        assert_ne!(dag.wire_class_mask(0) & ONE_Q, 0);
    }

    #[test]
    fn instruction_class_bits() {
        use gate_class::*;
        let classes =
            |g: Gate, qs: &[usize]| instruction_classes(&Instruction::new(g, qs.to_vec()));
        assert_eq!(
            classes(Gate::T, &[0]),
            ONE_Q | ONE_Q_DIAG | NON_DEVICE | NON_EXTENDED
        );
        assert_eq!(classes(Gate::Cx, &[0, 1]), CX | TWO_Q);
        assert_eq!(
            classes(Gate::Swap, &[0, 1]),
            TWO_Q | SWAP_FAMILY | NON_DEVICE
        );
        assert_eq!(classes(Gate::U3(0.1, 0.2, 0.3), &[0]), ONE_Q);
        assert_eq!(
            classes(Gate::Ccx, &[0, 1, 2]),
            MULTI_Q | NON_DEVICE | NON_EXTENDED
        );
        assert_eq!(classes(Gate::Measure, &[0]), NON_UNITARY);
    }

    #[test]
    fn replace_all_rewrites_stream_and_width() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut dag = Dag::from_circuit(&c);
        let report = dag.replace_all(
            3,
            vec![
                Instruction::new(crate::gate::Gate::X, vec![2]),
                Instruction::new(crate::gate::Gate::Cx, vec![2, 0]),
            ],
        );
        assert!(report.changed());
        assert_eq!(dag.num_qubits(), 3);
        assert_eq!(dag.len(), 2);
        assert_eq!(dag.wire_gen(1), dag.generation());
    }

    #[test]
    fn conversion_counters_count_both_directions() {
        reset_conversion_counts();
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let dag = Dag::from_circuit(&c);
        let back = dag.to_circuit();
        assert_eq!(back, c);
        assert_eq!(conversion_counts(), (1, 1));
        reset_conversion_counts();
        assert_eq!(conversion_counts(), (0, 0));
    }

    #[test]
    fn gate_counts_match_circuit() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).ccx(0, 1, 2).measure_all();
        let dag = Dag::from_circuit(&c);
        assert_eq!(dag.gate_counts(), c.gate_counts());
    }
}
