//! Property tests for the O(edit) splice-local relink: after arbitrary
//! random [`DagEdit`] batches, the incrementally maintained DAG must be
//! indistinguishable from a full rebuild (`Dag::from_circuit` of the edited
//! stream) — same program order, same per-wire links, same wire census —
//! and [`Dag::to_circuit`] must equal the stream produced by splicing the
//! instruction list positionally (the pre-refactor `apply` semantics).

use qc_circuit::testing::{blocked_neighborhood_circuit, random_circuit, toffoli_chain};
use qc_circuit::{instruction_classes, Circuit, Dag, DagEdit, Gate, Instruction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Asserts `dag` equals a freshly built DAG of the same stream: program
/// order, wire pred/succ links (compared positionally — ids are not stable
/// across a rebuild), and the per-wire gate-class census.
fn assert_matches_fresh_build(dag: &Dag, label: &str) {
    let circuit = dag.to_circuit();
    let fresh = Dag::from_circuit(&circuit);
    let ids: Vec<usize> = dag.iter().map(|(id, _)| id).collect();
    assert_eq!(ids.len(), fresh.len(), "{label}: node count");
    let pos_of = |id: usize| ids.iter().position(|&x| x == id);
    for (p, &id) in ids.iter().enumerate() {
        assert_eq!(dag.inst(id), fresh.inst(p), "{label}: instruction at {p}");
        for &q in &dag.inst(id).qubits {
            assert_eq!(
                dag.wire_pred(id, q).and_then(pos_of),
                fresh.wire_pred(p, q),
                "{label}: wire {q} pred of position {p}"
            );
            assert_eq!(
                dag.wire_succ(id, q).and_then(pos_of),
                fresh.wire_succ(p, q),
                "{label}: wire {q} succ of position {p}"
            );
        }
    }
    for q in 0..dag.num_qubits() {
        assert_eq!(
            dag.wire_class_mask(q),
            fresh.wire_class_mask(q),
            "{label}: class census of wire {q}"
        );
    }
}

/// A small random replacement stream over `num_qubits` wires (possibly on
/// wires the replaced node does not carry, exercising the order-walk
/// fallback of the relink).
fn random_replacement(rng: &mut StdRng, num_qubits: usize) -> Vec<Instruction> {
    let len = rng.gen_range(0..4usize);
    (0..len)
        .map(|_| {
            let q = rng.gen_range(0..num_qubits);
            match rng.gen_range(0..4u32) {
                0 => Instruction::new(Gate::H, vec![q]),
                1 => Instruction::new(Gate::T, vec![q]),
                2 => {
                    let mut r = rng.gen_range(0..num_qubits);
                    if r == q {
                        r = (r + 1) % num_qubits;
                    }
                    if num_qubits < 2 {
                        Instruction::new(Gate::X, vec![q])
                    } else {
                        Instruction::new(Gate::Cx, vec![q, r])
                    }
                }
                _ => Instruction::new(Gate::U3(0.3, -0.2, 0.9), vec![q]),
            }
        })
        .collect()
}

/// Applies `batches` rounds of random edits to `c`'s DAG, checking after
/// every batch that the incremental relink matches (a) positional splicing
/// of the instruction list and (b) a full rebuild of the edited stream.
fn check_random_edit_batches(c: &Circuit, seed: u64, batches: usize, label: &str) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut dag = Dag::from_circuit(c);
    // The positional mirror: what the pre-refactor renumbering `apply`
    // would have produced.
    let mut mirror: Vec<Instruction> = c.instructions().to_vec();
    for batch in 0..batches {
        if dag.is_empty() {
            break;
        }
        // Pick distinct victims by current program position.
        let ids: Vec<usize> = dag.iter().map(|(id, _)| id).collect();
        let mut positions: Vec<usize> = (0..ids.len()).collect();
        let count = rng.gen_range(1..=positions.len().min(5));
        for k in 0..count {
            let pick = rng.gen_range(k..positions.len());
            positions.swap(k, pick);
        }
        let mut positions: Vec<usize> = positions[..count].to_vec();
        positions.sort_unstable();

        let mut edit = DagEdit::new();
        // Positional splice plan: per position, the replacement (empty =
        // removal).
        let mut plan: Vec<(usize, Vec<Instruction>)> = Vec::new();
        for &p in &positions {
            let replacement = if rng.gen::<bool>() {
                Vec::new()
            } else {
                random_replacement(&mut rng, dag.num_qubits())
            };
            if replacement.is_empty() {
                edit.remove(ids[p]);
            } else {
                edit.replace(ids[p], replacement.clone());
            }
            plan.push((p, replacement));
        }
        let report = dag.apply(edit);
        assert_eq!(report.rewrites, count, "{label} batch {batch}: rewrites");
        assert!(
            report.relink_nodes >= count,
            "{label} batch {batch}: relink accounting"
        );
        // Mirror the splice positionally (descending so indices stay valid).
        for (p, replacement) in plan.into_iter().rev() {
            mirror.splice(p..p + 1, replacement);
        }
        let expected = {
            let mut e = Circuit::new(c.num_qubits());
            e.set_instructions(mirror.clone());
            e
        };
        assert_eq!(
            dag.to_circuit(),
            expected,
            "{label} batch {batch}: spliced stream"
        );
        assert_matches_fresh_build(&dag, &format!("{label} batch {batch}"));
        // Touched wires carry the fresh generation; untouched wires an
        // older one.
        for q in report.touched.iter() {
            assert_eq!(dag.wire_gen(q), dag.generation(), "{label}: stamping");
        }
    }
}

#[test]
fn random_circuits_relink_matches_rebuild() {
    for (n, g, seed) in [(3, 25, 11), (4, 40, 5), (5, 60, 77), (6, 50, 2)] {
        let c = random_circuit(n, g, seed);
        check_random_edit_batches(
            &c,
            seed ^ 0xDA6,
            12,
            &format!("random_circuit({n},{g},{seed})"),
        );
    }
}

#[test]
fn blocked_neighborhood_circuits_relink_matches_rebuild() {
    for (n, g, seed) in [(3, 15, 3), (4, 20, 8), (5, 25, 21)] {
        let c = blocked_neighborhood_circuit(n, g, seed);
        check_random_edit_batches(
            &c,
            seed ^ 0xB10C,
            12,
            &format!("blocked_neighborhood_circuit({n},{g},{seed})"),
        );
    }
}

#[test]
fn toffoli_chains_relink_matches_rebuild() {
    for (n, seed) in [(3, 1), (5, 4), (7, 13)] {
        let c = toffoli_chain(n, seed);
        check_random_edit_batches(&c, seed ^ 0x70FF, 12, &format!("toffoli_chain({n},{seed})"));
    }
}

#[test]
fn replacements_on_foreign_wires_relink_correctly() {
    // A replacement whose instructions live on wires the replaced node
    // never touched: the relink must find the neighbours by walking the
    // order list.
    let mut c = Circuit::new(4);
    c.h(0).cx(0, 1).t(3).cx(2, 3).h(2);
    let mut dag = Dag::from_circuit(&c);
    let mut edit = DagEdit::new();
    // Replace the t(3) with gates on wires {0, 2} only.
    edit.replace(
        2,
        vec![
            Instruction::new(Gate::H, vec![2]),
            Instruction::new(Gate::Cx, vec![0, 2]),
        ],
    );
    let report = dag.apply(edit);
    assert!(report.touched.contains(3) && report.touched.contains(0) && report.touched.contains(2));
    assert_matches_fresh_build(&dag, "foreign-wire replacement");
}

#[test]
fn census_tracks_every_gate_class() {
    // Every instruction's class bits are mirrored in its wires' census.
    let c = random_circuit(5, 60, 41);
    let dag = Dag::from_circuit(&c);
    for (_, inst) in dag.iter() {
        let classes = instruction_classes(inst);
        for &q in &inst.qubits {
            assert_eq!(
                dag.wire_class_mask(q) & classes,
                classes,
                "wire {q} census missing bits of {inst:?}"
            );
        }
    }
}
