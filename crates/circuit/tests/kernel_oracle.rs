//! Oracle equivalence tests for the kernel-based `circuit_unitary`.
//!
//! The retained embed-then-matmul construction
//! (`circuit_unitary_reference`) is an independent encoding of gate
//! semantics — it goes through `Gate::matrix()` and dense multiplication,
//! never through `Gate::kernel()` — so agreement on random circuits over
//! the full gate set is strong evidence the kernel engine and the gate
//! classification are both correct.

use qc_circuit::testing::random_circuit;
use qc_circuit::{circuit_unitary, circuit_unitary_reference, Circuit, Gate};

#[test]
fn random_circuits_match_reference_1_to_6_qubits() {
    for n in 1..=6 {
        for seed in 0..8u64 {
            let c = random_circuit(n, 24, seed * 100 + n as u64);
            let fast = circuit_unitary(&c);
            let slow = circuit_unitary_reference(&c);
            assert!(
                fast.approx_eq(&slow, 1e-9),
                "kernel/reference unitary mismatch on {n} qubits, seed {seed}"
            );
        }
    }
}

#[test]
fn every_gate_kind_alone_matches_reference() {
    // One instruction per circuit, on deliberately awkward qubit orders:
    // non-adjacent and reversed.
    let cases: Vec<(Gate, Vec<usize>)> = vec![
        (Gate::H, vec![3]),
        (Gate::Y, vec![0]),
        (Gate::Rz(0.9), vec![2]),
        (Gate::U3(0.4, -0.7, 1.2), vec![1]),
        (Gate::Cx, vec![3, 0]),
        (Gate::Cx, vec![0, 3]),
        (Gate::Cz, vec![2, 0]),
        (Gate::Cp(0.6), vec![1, 3]),
        (Gate::Swap, vec![3, 1]),
        (Gate::SwapZ, vec![2, 0]),
        (Gate::Ccx, vec![3, 1, 0]),
        (Gate::Cswap, vec![1, 3, 2]),
        (Gate::Mcx(3), vec![3, 0, 2, 1]),
        (Gate::Mcz(3), vec![1, 3, 0, 2]),
        (Gate::Cu(Gate::S.matrix().unwrap()), vec![3, 1]),
        (Gate::Unitary(Gate::Ccx.matrix().unwrap()), vec![2, 0, 3]),
    ];
    for (gate, qubits) in cases {
        let mut c = Circuit::new(4);
        c.push(gate.clone(), &qubits);
        let fast = circuit_unitary(&c);
        let slow = circuit_unitary_reference(&c);
        assert!(
            fast.approx_eq(&slow, 1e-12),
            "mismatch for {gate} on {qubits:?}"
        );
    }
}

#[test]
fn unitarity_is_preserved() {
    for seed in 0..4u64 {
        let c = random_circuit(5, 40, 31 + seed);
        assert!(circuit_unitary(&c).is_unitary(1e-9));
    }
}

#[test]
fn directives_are_skipped_like_reference() {
    let mut c = Circuit::new(3);
    c.h(0)
        .barrier()
        .annot_zero(1)
        .cx(0, 2)
        .annot(0.3, 0.1, 2)
        .swap(1, 2);
    assert!(circuit_unitary(&c).approx_eq(&circuit_unitary_reference(&c), 1e-12));
}

#[test]
fn consolidated_unitary_blocks_round_trip() {
    // A consolidated block (Gate::Unitary) of a sub-circuit behaves like
    // the sub-circuit inlined, on every qubit ordering.
    let mut inner = Circuit::new(2);
    inner.h(0).cx(0, 1).t(1);
    let block = circuit_unitary(&inner);
    for qubits in [[0usize, 2], [2, 0], [1, 2]] {
        let mut with_block = Circuit::new(3);
        with_block.push(Gate::Unitary(block.clone()), &qubits);
        let mut inlined = Circuit::new(3);
        inlined.h(qubits[0]).cx(qubits[0], qubits[1]).t(qubits[1]);
        assert!(
            circuit_unitary(&with_block).approx_eq(&circuit_unitary(&inlined), 1e-10),
            "block mismatch on {qubits:?}"
        );
    }
}
