//! Oracle equivalence tests for the kernel-based `circuit_unitary`.
//!
//! The retained embed-then-matmul construction
//! (`circuit_unitary_reference`) is an independent encoding of gate
//! semantics — it goes through `Gate::matrix()` and dense multiplication,
//! never through `Gate::kernel()` — so agreement on random circuits over
//! the full gate set is strong evidence the kernel engine and the gate
//! classification are both correct.

use qc_circuit::testing::{blocked_neighborhood_circuit, random_circuit, toffoli_chain};
use qc_circuit::unitary::circuit_unitary_with_panel_width;
use qc_circuit::{
    circuit_unitary, circuit_unitary_reference, circuit_unitary_unfused, Circuit, Gate,
};

#[test]
fn random_circuits_match_reference_1_to_6_qubits() {
    for n in 1..=6 {
        for seed in 0..8u64 {
            let c = random_circuit(n, 24, seed * 100 + n as u64);
            let fast = circuit_unitary(&c);
            let slow = circuit_unitary_reference(&c);
            assert!(
                fast.approx_eq(&slow, 1e-9),
                "kernel/reference unitary mismatch on {n} qubits, seed {seed}"
            );
        }
    }
}

#[test]
fn unfused_streaming_matches_reference() {
    // The per-gate streaming path must stay correct independently of the
    // fusion planner — it is the mid-level oracle between `circuit_unitary`
    // (fused, paneled) and the embed-then-matmul reference.
    for n in 1..=5 {
        for seed in 0..4u64 {
            let c = random_circuit(n, 24, 7000 + seed * 100 + n as u64);
            assert!(
                circuit_unitary_unfused(&c).approx_eq(&circuit_unitary_reference(&c), 1e-9),
                "unfused/reference mismatch on {n} qubits, seed {seed}"
            );
        }
    }
}

#[test]
fn panel_decomposition_is_exact_at_any_width() {
    // Panel streaming must reproduce the single-panel result *bit for bit*:
    // each column's trajectory is the same arithmetic whether or not its
    // panel is processed alongside others.
    for n in 3..=5usize {
        let c = random_circuit(n, 30, 40 + n as u64);
        let whole = circuit_unitary_with_panel_width(&c, 1 << n);
        let mut width = 2usize;
        while width < (1 << n) {
            let paneled = circuit_unitary_with_panel_width(&c, width);
            assert!(
                whole == paneled,
                "panel width {width} changed bits on {n} qubits"
            );
            width <<= 1;
        }
    }
}

#[test]
#[cfg(feature = "parallel")]
fn parallel_panels_are_bit_identical_at_every_thread_count() {
    // 8 panels of width 32 on an 8-qubit circuit: the panel fan-out is the
    // parallel surface here (the panels are too small for the kernels'
    // inner splitting to engage).
    let c = random_circuit(8, 60, 2026);
    let max_t = qc_math::max_threads().max(2);
    qc_math::set_max_threads(Some(1));
    let sequential = circuit_unitary_with_panel_width(&c, 32);
    for threads in [2, max_t] {
        qc_math::set_max_threads(Some(threads));
        let parallel = circuit_unitary_with_panel_width(&c, 32);
        qc_math::set_max_threads(None);
        assert!(
            sequential == parallel,
            "thread count {threads} changed circuit_unitary bits"
        );
    }
}

#[test]
fn every_gate_kind_alone_matches_reference() {
    // One instruction per circuit, on deliberately awkward qubit orders:
    // non-adjacent and reversed.
    let cases: Vec<(Gate, Vec<usize>)> = vec![
        (Gate::H, vec![3]),
        (Gate::Y, vec![0]),
        (Gate::Rz(0.9), vec![2]),
        (Gate::U3(0.4, -0.7, 1.2), vec![1]),
        (Gate::Cx, vec![3, 0]),
        (Gate::Cx, vec![0, 3]),
        (Gate::Cz, vec![2, 0]),
        (Gate::Cp(0.6), vec![1, 3]),
        (Gate::Swap, vec![3, 1]),
        (Gate::SwapZ, vec![2, 0]),
        (Gate::Ccx, vec![3, 1, 0]),
        (Gate::Cswap, vec![1, 3, 2]),
        (Gate::Mcx(3), vec![3, 0, 2, 1]),
        (Gate::Mcz(3), vec![1, 3, 0, 2]),
        (Gate::Cu(Gate::S.matrix().unwrap()), vec![3, 1]),
        (Gate::Unitary(Gate::Ccx.matrix().unwrap()), vec![2, 0, 3]),
    ];
    for (gate, qubits) in cases {
        let mut c = Circuit::new(4);
        c.push(gate.clone(), &qubits);
        let fast = circuit_unitary(&c);
        let slow = circuit_unitary_reference(&c);
        assert!(
            fast.approx_eq(&slow, 1e-12),
            "mismatch for {gate} on {qubits:?}"
        );
    }
}

#[test]
fn blocked_neighborhoods_match_unfused_and_reference() {
    // The consolidation rules (same-pair merges, k≤3 growth, in-block
    // absorption) against both independent oracles, over the 3q-rich
    // distribution: QV-style dense pairs, Toffolis, interleaved diagonals.
    for n in 2..=6usize {
        for seed in 0..6u64 {
            let c = blocked_neighborhood_circuit(n, 30, 9000 + seed * 31 + n as u64);
            let fused = circuit_unitary(&c);
            assert!(
                fused.approx_eq(&circuit_unitary_unfused(&c), 1e-9),
                "fused/unfused mismatch on a blocked circuit, {n} qubits, seed {seed}"
            );
            assert!(
                fused.approx_eq(&circuit_unitary_reference(&c), 1e-9),
                "fused/reference mismatch on a blocked circuit, {n} qubits, seed {seed}"
            );
        }
    }
}

#[test]
fn toffoli_chains_match_unfused_and_reference() {
    for n in 3..=6usize {
        for seed in 0..4u64 {
            let c = toffoli_chain(n, seed);
            let fused = circuit_unitary(&c);
            assert!(
                fused.approx_eq(&circuit_unitary_unfused(&c), 1e-9),
                "fused/unfused mismatch on a Toffoli chain, {n} qubits, seed {seed}"
            );
            assert!(
                fused.approx_eq(&circuit_unitary_reference(&c), 1e-9),
                "fused/reference mismatch on a Toffoli chain, {n} qubits, seed {seed}"
            );
        }
    }
}

#[test]
#[cfg(feature = "parallel")]
fn parallel_blocked_neighborhoods_are_bit_identical_at_every_thread_count() {
    // 8-qubit blocked circuits split across panels: the fused plan (with
    // merged 4×4 and, under the streaming profile, 8×8 blocks) must be
    // bit-identical at 1, 2 and max threads.
    let max_t = qc_math::max_threads().max(2);
    for (label, c) in [
        ("blocked", blocked_neighborhood_circuit(8, 40, 77)),
        ("toffoli-chain", toffoli_chain(8, 7)),
    ] {
        qc_math::set_max_threads(Some(1));
        let sequential = circuit_unitary_with_panel_width(&c, 32);
        for threads in [2, max_t] {
            qc_math::set_max_threads(Some(threads));
            let parallel = circuit_unitary_with_panel_width(&c, 32);
            qc_math::set_max_threads(None);
            assert!(
                sequential == parallel,
                "thread count {threads} changed bits on a {label} circuit"
            );
        }
    }
}

#[test]
fn unitarity_is_preserved() {
    for seed in 0..4u64 {
        let c = random_circuit(5, 40, 31 + seed);
        assert!(circuit_unitary(&c).is_unitary(1e-9));
    }
}

#[test]
fn directives_are_skipped_like_reference() {
    let mut c = Circuit::new(3);
    c.h(0)
        .barrier()
        .annot_zero(1)
        .cx(0, 2)
        .annot(0.3, 0.1, 2)
        .swap(1, 2);
    assert!(circuit_unitary(&c).approx_eq(&circuit_unitary_reference(&c), 1e-12));
}

#[test]
fn consolidated_unitary_blocks_round_trip() {
    // A consolidated block (Gate::Unitary) of a sub-circuit behaves like
    // the sub-circuit inlined, on every qubit ordering.
    let mut inner = Circuit::new(2);
    inner.h(0).cx(0, 1).t(1);
    let block = circuit_unitary(&inner);
    for qubits in [[0usize, 2], [2, 0], [1, 2]] {
        let mut with_block = Circuit::new(3);
        with_block.push(Gate::Unitary(block.clone()), &qubits);
        let mut inlined = Circuit::new(3);
        inlined.h(qubits[0]).cx(qubits[0], qubits[1]).t(qubits[1]);
        assert!(
            circuit_unitary(&with_block).approx_eq(&circuit_unitary(&inlined), 1e-10),
            "block mismatch on {qubits:?}"
        );
    }
}
