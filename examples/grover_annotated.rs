//! Grover's search with clean-ancilla multi-controlled gates and the
//! paper's `ANNOT(0,0)` annotations (Fig. 7, Table III): annotations let
//! QBO keep tracking the ancillas across iterations.
//!
//! Run with: `cargo run --release --example grover_annotated`

use qc_algos::{grover, optimal_iterations, McxDesign};
use rpo::prelude::*;

fn main() {
    let n = 6;
    let marked = 0b101101 & ((1 << n) - 1);
    let iterations = optimal_iterations(n); // 6 rounds maximize P[marked]
    let backend = Backend::melbourne();
    println!("{n}-qubit Grover, marked element {marked:0n$b}, {iterations} iterations\n");

    let plain = grover(
        n,
        marked,
        iterations,
        McxDesign::CleanAncilla { annotate: false },
    );
    let annotated = grover(
        n,
        marked,
        iterations,
        McxDesign::CleanAncilla { annotate: true },
    );

    let opts = |seed| RpoOptions::new().with_seed(seed);
    let level3 = transpile(&plain, &backend, &TranspileOptions::level(3).with_seed(5)).unwrap();
    let rpo = transpile_rpo(&plain, &backend, &opts(5)).unwrap();
    let rpo_annot = transpile_rpo(&annotated, &backend, &opts(5)).unwrap();

    println!("                         CNOTs   depth");
    for (label, t) in [
        ("level 3", &level3),
        ("RPO", &rpo),
        ("RPO + ANNOT(0,0)", &rpo_annot),
    ] {
        println!(
            "{label:<24} {:>6}  {:>6}",
            t.circuit.gate_counts().cx,
            t.circuit.depth()
        );
    }
    assert!(rpo.circuit.gate_counts().cx <= level3.circuit.gate_counts().cx);
    assert!(rpo_annot.circuit.gate_counts().cx <= rpo.circuit.gate_counts().cx);

    // Sanity: the annotated, RPO-compiled circuit still finds the marked
    // element (simulate the compacted physical circuit).
    let (compact, old_of_new) = rpo_annot.circuit.compacted();
    let sv = Statevector::from_circuit(&compact);
    let pos = |physical: usize| old_of_new.iter().position(|&o| o == physical);
    let p: f64 = sv
        .probabilities()
        .iter()
        .enumerate()
        .filter(|(idx, _)| {
            (0..n).all(|q| {
                let bit = (marked >> q) & 1;
                match pos(rpo_annot.final_map[q]) {
                    Some(ci) => (idx >> ci) & 1 == bit,
                    None => bit == 0,
                }
            })
        })
        .map(|(_, p)| p)
        .sum();
    println!("\nP[marked] after RPO+annotations compilation = {p:.4}");
    assert!(p > 0.8, "search quality must survive compilation: {p}");
}
