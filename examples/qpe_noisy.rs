//! The paper's hardware experiment (Fig. 11), in simulation: 3-qubit
//! quantum phase estimation under device noise — fewer CNOTs, higher
//! success rate.
//!
//! Run with: `cargo run --release --example qpe_noisy`

use qc_algos::{qpe, qpe_expected_outcome};
use rpo::prelude::*;

fn main() {
    let theta = 7.0 / 8.0;
    let n = 3;
    let circuit = qpe(n, theta);
    let expected = qpe_expected_outcome(n, theta);
    let shots = 8192;
    println!("3-qubit QPE of θ = 7/8; correct outcome = {expected:03b}\n");

    for backend in [
        Backend::melbourne(),
        Backend::almaden(),
        Backend::rochester(),
    ] {
        let level3 =
            transpile(&circuit, &backend, &TranspileOptions::level(3).with_seed(0)).unwrap();
        let rpo = transpile_rpo(&circuit, &backend, &RpoOptions::new().with_seed(0)).unwrap();
        let noise = {
            let cal = backend.noise();
            NoiseModel::new(cal.p1q, cal.p2q, cal.readout)
        };
        let rate = |t: &qc_transpile::preset::Transpiled, seed| {
            let (compact, old_of_new) = t.circuit.compacted();
            let mut sim = NoisySimulator::new(noise, seed);
            let counts = sim.run(&compact, shots);
            let mut hits = 0usize;
            for (outcome, count) in counts {
                let logical: usize = (0..n)
                    .map(|q| {
                        let ci = old_of_new
                            .iter()
                            .position(|&o| o == t.final_map[q])
                            .expect("measured qubit present");
                        ((outcome >> ci) & 1) << q
                    })
                    .sum();
                if logical == expected {
                    hits += count;
                }
            }
            hits as f64 / shots as f64
        };
        let r3 = rate(&level3, 42);
        let rr = rate(&rpo, 42);
        println!(
            "{:<20} level3: {:>3} CNOTs, success {:.3} | RPO: {:>3} CNOTs, success {:.3} ({:.2}×)",
            backend.name(),
            level3.circuit.gate_counts().cx,
            r3,
            rpo.circuit.gate_counts().cx,
            rr,
            rr / r3.max(1e-9)
        );
        assert!(rpo.circuit.gate_counts().cx <= level3.circuit.gate_counts().cx);
    }
}
