//! The paper's Fig. 10 case study: QBO turns the Bernstein–Vazirani
//! *boolean* oracle into the *phase* oracle.
//!
//! Run with: `cargo run --release --example bernstein_vazirani`

use qc_algos::{bernstein_vazirani, hidden_string_outcome, OracleStyle};
use rpo::prelude::*;

fn main() {
    let s = [true, true, false, true]; // hidden string (little-endian)
    let boolean = bernstein_vazirani(&s, OracleStyle::Boolean);
    let phase = bernstein_vazirani(&s, OracleStyle::Phase);
    println!("hidden string s (little-endian bits): {s:?}\n");
    println!(
        "boolean oracle: {} CNOTs, {} 1q gates (uses an ancilla in |−⟩)",
        boolean.gate_counts().cx,
        boolean.gate_counts().single_qubit
    );
    println!(
        "phase  oracle: {} CNOTs, {} 1q gates",
        phase.gate_counts().cx,
        phase.gate_counts().single_qubit
    );

    // QBO alone performs the conversion (no device needed).
    let mut optimized = boolean.clone();
    Qbo::new().run(&mut optimized).expect("qbo");
    println!(
        "QBO(boolean):  {} CNOTs, {} Z gates — the phase-oracle design",
        optimized.gate_counts().cx,
        optimized.count_name("z")
    );
    assert_eq!(optimized.gate_counts().cx, 0);

    // The algorithm still works: a single run reads out s exactly.
    let sv = Statevector::from_circuit(&optimized);
    let want = hidden_string_outcome(&s);
    let mask = (1usize << s.len()) - 1;
    let p: f64 = sv
        .probabilities()
        .iter()
        .enumerate()
        .filter(|(i, _)| i & mask == want)
        .map(|(_, p)| p)
        .sum();
    println!("\nP[measure s] after optimization = {p:.6}");
    assert!((p - 1.0).abs() < 1e-9);

    // The Hoare-logic baseline cannot find this: the ancilla is in the
    // X basis, invisible to classical-state reasoning.
    let mut hoare = boolean.clone();
    HoareOptimizer::new().run(&mut hoare).expect("hoare");
    println!(
        "Hoare baseline leaves {} CNOTs in place",
        hoare.gate_counts().cx
    );
    assert!(hoare.gate_counts().cx > 0);
}
