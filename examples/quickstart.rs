//! Quickstart: build a circuit, transpile it with and without RPO, and
//! compare CNOT counts.
//!
//! Run with: `cargo run --release --example quickstart`

use rpo::prelude::*;

fn main() {
    // A GHZ-like circuit with a long-range interaction that will need
    // routing SWAPs — prime territory for the paper's SWAP → SWAPZ rewrite.
    let n = 9;
    let mut circuit = Circuit::new(n);
    circuit.h(0);
    for q in 0..n - 1 {
        circuit.cx(q, q + 1);
    }
    circuit.cz(0, n - 1); // distant pair: routing will insert SWAPs
    circuit.measure_all();

    let backend = Backend::melbourne();
    println!(
        "target device: {} ({} qubits)\n",
        backend.name(),
        backend.num_qubits()
    );

    let baseline = transpile(&circuit, &backend, &TranspileOptions::level(3).with_seed(1))
        .expect("level-3 transpilation");
    let rpo = transpile_rpo(&circuit, &backend, &RpoOptions::new().with_seed(1))
        .expect("RPO transpilation");

    let b = baseline.circuit.gate_counts();
    let r = rpo.circuit.gate_counts();
    println!("                 level 3    RPO");
    println!("CNOT gates     {:>9} {:>6}", b.cx, r.cx);
    println!("1-qubit gates  {:>9} {:>6}", b.single_qubit, r.single_qubit);
    println!(
        "depth          {:>9} {:>6}",
        baseline.circuit.depth(),
        rpo.circuit.depth()
    );

    assert!(r.cx <= b.cx);
    if b.cx > 0 {
        println!(
            "\nRPO saved {:.1}% of the CNOTs.",
            100.0 * (b.cx - r.cx) as f64 / b.cx as f64
        );
    }

    // Both versions still produce a GHZ state: verify the ideal outcome
    // correlations survive compilation.
    let sv = Statevector::from_circuit(&rpo.circuit);
    let q0 = rpo.final_map[0];
    let correlated: f64 = sv
        .probabilities()
        .iter()
        .enumerate()
        .filter(|(idx, _)| {
            let first = (idx >> q0) & 1;
            (0..n).all(|l| (idx >> rpo.final_map[l]) & 1 == first)
        })
        .map(|(_, p)| p)
        .sum();
    println!("GHZ correlation after RPO compilation: {correlated:.6}");
    assert!((correlated - 1.0).abs() < 1e-9);
}
