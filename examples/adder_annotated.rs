//! Quantum arithmetic with uncomputation — the paper's motivating scenario
//! for annotations (Section VI-C, citing Vedral et al.): a ripple-carry
//! adder uncomputes its carry ancilla, the programmer annotates it, and
//! downstream gates on that ancilla get optimized.
//!
//! Run with: `cargo run --release --example adder_annotated`

use qc_algos::ripple_carry_adder;
use rpo::prelude::*;

fn main() {
    let n = 3;
    let (a_val, b_val) = (5usize, 6usize);
    let carry = 2 * n;

    // Program: load a and b, add, then *reuse* the carry ancilla as the
    // control of a CNOT. Only the annotation tells the compiler the ancilla
    // is |0⟩ again after the adder's reverse computation.
    // Load b in superposition-entangled form so the state analysis cannot
    // follow the arithmetic classically: only the programmer's annotation
    // reveals that the carry ancilla is clean again.
    let build = |annotate: bool| {
        let mut c = Circuit::new(2 * n + 2);
        for i in 0..n {
            if (a_val >> i) & 1 == 1 {
                c.x(i);
            }
            if (b_val >> i) & 1 == 1 {
                c.x(n + i);
            }
        }
        c.h(0).cx(0, 1).cx(0, 1).h(0); // identity, but opaque to the analysis
        c.compose(
            &ripple_carry_adder(n, annotate),
            &(0..2 * n + 1).collect::<Vec<_>>(),
        );
        c.cx(carry, 2 * n + 1); // dead CNOT: the carry is provably |0⟩ — if you know it
        c.measure_all();
        c
    };

    let mut counts = Vec::new();
    for (label, annotate) in [("without ANNOT", false), ("with ANNOT(0,0)", true)] {
        let mut optimized = build(annotate);
        Qbo::new().run(&mut optimized).expect("qbo");
        counts.push(optimized.gate_counts().cx);
        println!(
            "{label:<18} → {} CNOTs after QBO",
            optimized.gate_counts().cx
        );
    }
    assert!(
        counts[1] < counts[0],
        "annotation must unlock the dead CNOT"
    );

    // Verify the arithmetic survives the full RPO pipeline.
    let circuit = build(true);
    let backend = Backend::melbourne();
    let out = transpile_rpo(&circuit, &backend, &RpoOptions::new()).expect("rpo transpile");
    let (compact, old_of_new) = out.circuit.compacted();
    let sv = Statevector::from_circuit(&compact);
    let expected_sum = (a_val + b_val) % (1 << n);
    let p: f64 = sv
        .probabilities()
        .iter()
        .enumerate()
        .filter(|(idx, _)| {
            (0..n).all(|i| {
                let want = (expected_sum >> i) & 1;
                match old_of_new.iter().position(|&o| o == out.final_map[n + i]) {
                    Some(ci) => (idx >> ci) & 1 == want,
                    None => want == 0,
                }
            })
        })
        .map(|(_, p)| p)
        .sum();
    println!(
        "\nP[{a_val} + {b_val} ≡ {expected_sum} (mod {})] after RPO compilation = {p:.6}",
        1 << n
    );
    assert!((p - 1.0).abs() < 1e-9);
}
