//! The paper's SWAP optimizations, rule by rule (Eqs. 4–6): zero states,
//! generic pure states, and pairs of pure states.
//!
//! Run with: `cargo run --release --example swap_pure_states`

use qc_sim::same_output_state;
use rpo::prelude::*;

fn report(label: &str, before: &Circuit, after: &Circuit) {
    println!(
        "{label:<42} swap:{} swapz:{} cx:{} 1q:{}",
        after.count_name("swap"),
        after.count_name("swapz"),
        after.gate_counts().cx,
        after.gate_counts().single_qubit,
    );
    assert!(
        same_output_state(before, after, 1e-8),
        "rewrite must preserve behavior"
    );
}

fn main() {
    println!("SWAP strength reduction (each row = one paper rule)\n");

    // Eq. 4: one qubit still in |0⟩ → SWAPZ (3 CNOTs → 2 CNOTs).
    let mut c = Circuit::new(2);
    c.rx(0.8, 1).swap(0, 1);
    let mut out = c.clone();
    Qbo::new().run(&mut out).unwrap();
    report("Eq. 4  swap(|0⟩, ψ)  → swapz", &c, &out);

    // Table VI: both in known basis states → single-qubit gates only.
    let mut c = Circuit::new(2);
    c.x(0).h(1).swap(0, 1); // |1⟩ vs |+⟩
    let mut out = c.clone();
    Qbo::new().run(&mut out).unwrap();
    report("Tab VI swap(|1⟩, |+⟩) → local gates", &c, &out);

    // Eq. 5: one *pure* (non-basis) state → U†·SWAPZ·U.
    let mut c = Circuit::new(3);
    c.u3(0.7, 0.3, 0.0, 0); // known pure state on qubit 0
    c.h(1).cx(1, 2); // qubit 1 entangled: unknown
    c.swap(0, 1);
    let mut out = c.clone();
    Qpo::new().run(&mut out).unwrap();
    report("Eq. 5  swap(pure, ⊤)  → U†·swapz·U", &c, &out);

    // Eq. 6: both pure → two local gates, no CNOTs at all.
    let mut c = Circuit::new(2);
    c.u3(0.7, 0.3, 0.0, 0).u3(1.2, -0.5, 0.0, 1).swap(0, 1);
    let mut out = c.clone();
    Qpo::new().run(&mut out).unwrap();
    report("Eq. 6  swap(pure, pure) → V, V†", &c, &out);
    assert_eq!(out.gate_counts().cx, 0);
    assert_eq!(out.count_name("swapz"), 0);

    println!("\nEvery rewrite verified functionally equivalent by simulation.");
}
