//! # rpo — Relaxed Peephole Optimization for quantum circuits
//!
//! A Rust reproduction of *"Relaxed Peephole Optimization: A Novel Compiler
//! Optimization for Quantum Circuits"* (Liu, Bello & Zhou, CGO 2021),
//! including the full compiler substrate it runs on: a quantum-circuit IR,
//! a Qiskit-style transpiler (layout, stochastic routing, basis
//! translation, KAK block re-synthesis), a noisy state-vector simulator,
//! fake IBM Q backends, the paper's benchmark algorithms, and the
//! Hoare-logic baseline it compares against.
//!
//! The paper's contribution lives in [`rpo_core`]: compile-time
//! single-qubit state analyses (basis-state automaton + pure-state Bloch
//! tracking) feeding two passes — QBO and QPO — that replace gates with
//! functionally equivalent but cheaper ones even when the unitary changes.
//!
//! ## Quickstart
//!
//! ```
//! use rpo::prelude::*;
//!
//! // The paper's motivating example: a CNOT whose control is provably |0⟩.
//! let mut circuit = Circuit::new(2);
//! circuit.h(1).cx(0, 1).measure_all();
//!
//! let backend = Backend::melbourne();
//! let baseline = transpile(&circuit, &backend, &TranspileOptions::level(3)).unwrap();
//! let optimized = transpile_rpo(&circuit, &backend, &RpoOptions::new()).unwrap();
//! assert!(optimized.circuit.gate_counts().cx <= baseline.circuit.gate_counts().cx);
//! ```
//!
//! See `examples/` for runnable walkthroughs of each paper experiment and
//! `crates/experiments` for the table/figure reproduction harness.

pub use qc_algos as algos;
pub use qc_backends as backends;
pub use qc_circuit as circuit;
pub use qc_hoare as hoare;
pub use qc_math as math;
pub use qc_serve as serve;
pub use qc_sim as sim;
pub use qc_synth as synth;
pub use qc_transpile as transpile;
pub use rpo_core as core;

/// The most common imports in one place.
pub mod prelude {
    pub use qc_backends::Backend;
    pub use qc_circuit::{BasisState, Circuit, Gate};
    pub use qc_circuit::{BudgetKind, RpoError};
    pub use qc_hoare::{transpile_hoare, HoareOptimizer};
    pub use qc_serve::{ServeConfig, ServeFlow, ServeRequest, TranspileService};
    pub use qc_sim::{NoiseModel, NoisySimulator, Statevector};
    pub use qc_transpile::{transpile, DegradationReport, Pass, TranspileBudget, TranspileOptions};
    pub use rpo_core::{transpile_rpo, Qbo, Qpo, RpoOptions};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let sv = Statevector::from_circuit(&c);
        assert!((sv.probability_of(0) - 0.5).abs() < 1e-12);
        let out = transpile(&c, &Backend::linear(2), &TranspileOptions::level(1)).unwrap();
        assert!(out.circuit.gate_counts().cx >= 1);
    }
}
